package sqlparse

import (
	"strings"
	"testing"
)

// appendixQuery is the paper's Appendix A output (lightly normalized: the
// paper's PDF has one unbalanced parenthesis in the IMPACT expression, fixed
// here, as any executable reproduction must).
const appendixQuery = `
WITH
FINANCIALS AS (
  SELECT ORG_NAME,
    SUM(CASE WHEN TO_CHAR(FIN_MONTH, 'YYYY"Q"Q') = '2023Q1' THEN REVENUE ELSE 0 END) AS REVENUE_2023Q1,
    SUM(CASE WHEN TO_CHAR(FIN_MONTH, 'YYYY"Q"Q') = '2023Q2' THEN REVENUE ELSE 0 END) AS REVENUE_2023Q2
  FROM SPORTS_FINANCIALS
  WHERE TO_CHAR(FIN_MONTH, 'YYYY"Q"Q') IN ('2023Q1', '2023Q2')
    AND COUNTRY = 'Canada'
    AND OWNERSHIP_FLAG_COLUMN = 'COC'
  GROUP BY ORG_NAME
),
VIEWERSHIP AS (
  SELECT ORG_NAME,
    SUM(CASE WHEN TO_CHAR(VIEW_MONTH, 'YYYY"Q"Q') = '2023Q1' THEN VIEWS ELSE 0 END) AS VIEWS_2023Q1,
    SUM(CASE WHEN TO_CHAR(VIEW_MONTH, 'YYYY"Q"Q') = '2023Q2' THEN VIEWS ELSE 0 END) AS VIEWS_2023Q2
  FROM SPORTS_VIEWERSHIP
  WHERE TO_CHAR(VIEW_MONTH, 'YYYY"Q"Q') IN ('2023Q1', '2023Q2')
    AND COUNTRY = 'Canada'
    AND OWNERSHIP_FLAG_COLUMN = 'COC'
  GROUP BY ORG_NAME
),
CHANGE_IN_REVENUE AS (
  SELECT
    f.ORG_NAME,
    CAST(f.REVENUE_2023Q2 AS FLOAT) / NULLIF(v.VIEWS_2023Q2, 0) AS RPV,
    CAST(f.REVENUE_2023Q1 AS FLOAT) / NULLIF(v.VIEWS_2023Q1, 0) AS PRIOR_QTR_RPV,
    -1 * (
      (CAST(f.REVENUE_2023Q2 AS FLOAT) / NULLIF(v.VIEWS_2023Q2, 0)) -
      (CAST(f.REVENUE_2023Q1 AS FLOAT) / NULLIF(v.VIEWS_2023Q1, 0))
    ) AS RPV_CHANGE,
    ((CAST(f.REVENUE_2023Q2 AS FLOAT) / NULLIF(v.VIEWS_2023Q2, 0)) -
      (CAST(f.REVENUE_2023Q1 AS FLOAT) / NULLIF(v.VIEWS_2023Q1, 0))
    ) * NULLIF(v.VIEWS_2023Q2, 0) AS IMPACT,
    ROW_NUMBER() OVER (PARTITION BY f.COUNTRY ORDER BY (-1 * (
      (CAST(f.REVENUE_2023Q2 AS FLOAT) / NULLIF(v.VIEWS_2023Q2, 0)) -
      (CAST(f.REVENUE_2023Q1 AS FLOAT) / NULLIF(v.VIEWS_2023Q1, 0)))
    ) DESC) AS SPORT_RANK,
    ROW_NUMBER() OVER (PARTITION BY f.COUNTRY ORDER BY (-1 * (
      (CAST(f.REVENUE_2023Q2 AS FLOAT) / NULLIF(v.VIEWS_2023Q2, 0)) -
      (CAST(f.REVENUE_2023Q1 AS FLOAT) / NULLIF(v.VIEWS_2023Q1, 0)))
    ) ASC) AS WORST_SPORT_RANK
  FROM FINANCIALS f
  JOIN VIEWERSHIP v ON f.ORG_NAME = v.ORG_NAME
)
SELECT
  SPORT_RANK, ORG_NAME, RPV, PRIOR_QTR_RPV, RPV_CHANGE, IMPACT
FROM
  CHANGE_IN_REVENUE
WHERE
  SPORT_RANK <= 5 OR WORST_SPORT_RANK <= 5
ORDER BY
  SPORT_RANK;
`

func mustParse(t *testing.T, src string) *SelectStmt {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return stmt
}

func TestParseSimpleSelect(t *testing.T) {
	stmt := mustParse(t, "SELECT a, b AS total FROM t WHERE a > 1 ORDER BY b DESC LIMIT 10")
	if len(stmt.Core.Items) != 2 {
		t.Fatalf("items = %d, want 2", len(stmt.Core.Items))
	}
	if stmt.Core.Items[1].Alias != "total" {
		t.Errorf("alias = %q, want total", stmt.Core.Items[1].Alias)
	}
	if stmt.Core.Where == nil {
		t.Error("missing WHERE")
	}
	if len(stmt.OrderBy) != 1 || !stmt.OrderBy[0].Desc {
		t.Errorf("order by = %+v, want one DESC item", stmt.OrderBy)
	}
	if stmt.Limit == nil {
		t.Error("missing LIMIT")
	}
}

func TestParseImplicitAlias(t *testing.T) {
	stmt := mustParse(t, "SELECT a total FROM t u")
	if stmt.Core.Items[0].Alias != "total" {
		t.Errorf("implicit column alias = %q, want total", stmt.Core.Items[0].Alias)
	}
	tn, ok := stmt.Core.From.(*TableName)
	if !ok || tn.Alias != "u" {
		t.Errorf("table alias = %+v, want alias u", stmt.Core.From)
	}
}

func TestParseJoins(t *testing.T) {
	stmt := mustParse(t, "SELECT * FROM a JOIN b ON a.id = b.id LEFT JOIN c ON b.id = c.id")
	j, ok := stmt.Core.From.(*JoinExpr)
	if !ok {
		t.Fatalf("from = %T, want *JoinExpr", stmt.Core.From)
	}
	if j.Kind != LeftJoin {
		t.Errorf("outer join kind = %v, want LEFT JOIN", j.Kind)
	}
	inner, ok := j.Left.(*JoinExpr)
	if !ok || inner.Kind != InnerJoin {
		t.Errorf("inner join = %+v, want INNER", j.Left)
	}
}

func TestParseCommaJoinBecomesCross(t *testing.T) {
	stmt := mustParse(t, "SELECT * FROM a, b WHERE a.id = b.id")
	j, ok := stmt.Core.From.(*JoinExpr)
	if !ok || j.Kind != CrossJoin {
		t.Fatalf("from = %+v, want cross join", stmt.Core.From)
	}
}

func TestParseGroupHaving(t *testing.T) {
	stmt := mustParse(t, "SELECT dept, COUNT(*) FROM emp GROUP BY dept HAVING COUNT(*) > 3")
	if len(stmt.Core.GroupBy) != 1 {
		t.Fatalf("group by = %d exprs, want 1", len(stmt.Core.GroupBy))
	}
	if stmt.Core.Having == nil {
		t.Fatal("missing HAVING")
	}
	fc, ok := stmt.Core.Items[1].Expr.(*FuncCall)
	if !ok || !fc.Star {
		t.Errorf("COUNT(*) = %+v, want star call", stmt.Core.Items[1].Expr)
	}
}

func TestParseCase(t *testing.T) {
	stmt := mustParse(t, "SELECT CASE WHEN x > 0 THEN 'pos' WHEN x < 0 THEN 'neg' ELSE 'zero' END FROM t")
	ce, ok := stmt.Core.Items[0].Expr.(*CaseExpr)
	if !ok {
		t.Fatalf("expr = %T, want *CaseExpr", stmt.Core.Items[0].Expr)
	}
	if len(ce.Whens) != 2 || ce.Else == nil || ce.Operand != nil {
		t.Errorf("case = %+v, want 2 whens + else, searched form", ce)
	}
}

func TestParseOperandCase(t *testing.T) {
	stmt := mustParse(t, "SELECT CASE x WHEN 1 THEN 'a' END FROM t")
	ce := stmt.Core.Items[0].Expr.(*CaseExpr)
	if ce.Operand == nil {
		t.Error("operand CASE lost its operand")
	}
}

func TestParseWindow(t *testing.T) {
	stmt := mustParse(t, "SELECT ROW_NUMBER() OVER (PARTITION BY dept ORDER BY sal DESC) FROM emp")
	fc := stmt.Core.Items[0].Expr.(*FuncCall)
	if fc.Over == nil {
		t.Fatal("missing OVER")
	}
	if len(fc.Over.PartitionBy) != 1 || len(fc.Over.OrderBy) != 1 || !fc.Over.OrderBy[0].Desc {
		t.Errorf("window = %+v", fc.Over)
	}
}

func TestParseInForms(t *testing.T) {
	stmt := mustParse(t, "SELECT * FROM t WHERE a IN (1, 2, 3) AND b NOT IN (SELECT id FROM u)")
	b := stmt.Core.Where.(*Binary)
	in1 := b.L.(*InExpr)
	if len(in1.List) != 3 || in1.Not {
		t.Errorf("list IN = %+v", in1)
	}
	in2 := b.R.(*InExpr)
	if in2.Select == nil || !in2.Not {
		t.Errorf("subquery NOT IN = %+v", in2)
	}
}

func TestParseBetweenLikeIsNull(t *testing.T) {
	stmt := mustParse(t, "SELECT * FROM t WHERE a BETWEEN 1 AND 10 AND b LIKE 'x%' AND c IS NOT NULL")
	var between, like, isnull bool
	WalkExprs(stmt.Core.Where, func(e Expr) {
		switch e.(type) {
		case *BetweenExpr:
			between = true
		case *LikeExpr:
			like = true
		case *IsNullExpr:
			isnull = true
		}
	})
	if !between || !like || !isnull {
		t.Errorf("between=%v like=%v isnull=%v, want all true", between, like, isnull)
	}
}

func TestParseCastAndNullif(t *testing.T) {
	stmt := mustParse(t, "SELECT CAST(x AS FLOAT) / NULLIF(y, 0) FROM t")
	b := stmt.Core.Items[0].Expr.(*Binary)
	if _, ok := b.L.(*CastExpr); !ok {
		t.Errorf("left = %T, want cast", b.L)
	}
	fc, ok := b.R.(*FuncCall)
	if !ok || fc.Name != "NULLIF" {
		t.Errorf("right = %+v, want NULLIF call", b.R)
	}
}

func TestParseCTEs(t *testing.T) {
	stmt := mustParse(t, "WITH a AS (SELECT 1 AS x), b (y) AS (SELECT x FROM a) SELECT y FROM b")
	if len(stmt.With) != 2 {
		t.Fatalf("with = %d CTEs, want 2", len(stmt.With))
	}
	if stmt.With[1].Columns[0] != "y" {
		t.Errorf("cte column list = %v", stmt.With[1].Columns)
	}
}

func TestParseUnion(t *testing.T) {
	stmt := mustParse(t, "SELECT a FROM t UNION ALL SELECT a FROM u ORDER BY a")
	if len(stmt.Compound) != 1 || stmt.Compound[0].Op != UnionAllOp {
		t.Fatalf("compound = %+v", stmt.Compound)
	}
	if len(stmt.OrderBy) != 1 {
		t.Error("statement-level ORDER BY lost")
	}
}

func TestParseExists(t *testing.T) {
	stmt := mustParse(t, "SELECT * FROM t WHERE EXISTS (SELECT 1 FROM u) AND NOT EXISTS (SELECT 1 FROM v)")
	b := stmt.Core.Where.(*Binary)
	e1 := b.L.(*ExistsExpr)
	e2 := b.R.(*ExistsExpr)
	if e1.Not || !e2.Not {
		t.Errorf("exists flags: %v %v", e1.Not, e2.Not)
	}
}

func TestParseScalarSubquery(t *testing.T) {
	stmt := mustParse(t, "SELECT (SELECT MAX(x) FROM u) AS mx FROM t")
	if _, ok := stmt.Core.Items[0].Expr.(*SubqueryExpr); !ok {
		t.Errorf("expr = %T, want scalar subquery", stmt.Core.Items[0].Expr)
	}
}

func TestParsePrecedence(t *testing.T) {
	stmt := mustParse(t, "SELECT 1 WHERE a OR b AND c = 1 + 2 * 3")
	or := stmt.Core.Where.(*Binary)
	if or.Op != "OR" {
		t.Fatalf("top op = %s, want OR", or.Op)
	}
	and := or.R.(*Binary)
	if and.Op != "AND" {
		t.Fatalf("second op = %s, want AND", and.Op)
	}
	eq := and.R.(*Binary)
	if eq.Op != "=" {
		t.Fatalf("third op = %s, want =", eq.Op)
	}
	plus := eq.R.(*Binary)
	if plus.Op != "+" {
		t.Fatalf("fourth op = %s, want +", plus.Op)
	}
	times := plus.R.(*Binary)
	if times.Op != "*" {
		t.Fatalf("fifth op = %s, want *", times.Op)
	}
}

func TestParseAppendixQuery(t *testing.T) {
	stmt := mustParse(t, appendixQuery)
	if len(stmt.With) != 3 {
		t.Fatalf("appendix query has %d CTEs, want 3", len(stmt.With))
	}
	names := []string{"FINANCIALS", "VIEWERSHIP", "CHANGE_IN_REVENUE"}
	for i, want := range names {
		if stmt.With[i].Name != want {
			t.Errorf("cte %d = %q, want %q", i, stmt.With[i].Name, want)
		}
	}
	if len(stmt.Core.Items) != 6 {
		t.Errorf("final select has %d items, want 6", len(stmt.Core.Items))
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		src  string
		want string
	}{
		{"", `expected "SELECT"`},
		{"SELECT", "unexpected"},
		{"SELECT * FROM", "expected identifier"},
		{"SELECT * FROM t WHERE", "unexpected"},
		{"SELECT CASE x END", "at least one WHEN"},
		{"SELECT * FROM t GROUP", `expected "BY"`},
		{"SELECT a FROM t ORDER a", `expected "BY"`},
		{"SELECT CAST(x AS) FROM t", "expected type name"},
		{"SELECT * FROM t; SELECT 1", "after statement"},
		{"SELECT f(1,) FROM t", "unexpected"},
	}
	for _, tt := range tests {
		_, err := Parse(tt.src)
		if err == nil {
			t.Errorf("Parse(%q): want error containing %q, got nil", tt.src, tt.want)
			continue
		}
		if !strings.Contains(err.Error(), tt.want) {
			t.Errorf("Parse(%q) error = %q, want containing %q", tt.src, err, tt.want)
		}
	}
}

func TestParseErrorsAreSyntaxErrors(t *testing.T) {
	_, err := Parse("SELECT * FROM t WHERE (")
	var se *SyntaxError
	if !asSyntaxError(err, &se) {
		t.Fatalf("error %T is not *SyntaxError", err)
	}
	if se.Pos.Line == 0 {
		t.Error("syntax error carries no position")
	}
}

func asSyntaxError(err error, out **SyntaxError) bool {
	se, ok := err.(*SyntaxError)
	if ok {
		*out = se
	}
	return ok
}
