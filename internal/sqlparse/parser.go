package sqlparse

import (
	"strings"
)

// Parser turns a token stream into an AST.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses a single SELECT statement (optionally terminated by a
// semicolon) from src.
func Parse(src string) (*SelectStmt, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	stmt, err := p.parseSelectStmt()
	if err != nil {
		return nil, err
	}
	p.accept(SYMBOL, ";")
	if !p.at(EOF, "") {
		return nil, errf(p.cur().Pos, "unexpected %s %q after statement", p.cur().Kind, p.cur().Text)
	}
	return stmt, nil
}

// ParseExpr parses a standalone scalar expression from src.
func ParseExpr(src string) (Expr, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.at(EOF, "") {
		return nil, errf(p.cur().Pos, "unexpected %q after expression", p.cur().Text)
	}
	return e, nil
}

func (p *Parser) cur() Token { return p.toks[p.pos] }

func (p *Parser) at(kind TokenKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *Parser) atKeyword(words ...string) bool {
	t := p.cur()
	if t.Kind != KEYWORD {
		return false
	}
	for _, w := range words {
		if t.Text == w {
			return true
		}
	}
	return false
}

func (p *Parser) accept(kind TokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(kind TokenKind, text string) (Token, error) {
	t := p.cur()
	if !p.at(kind, text) {
		want := text
		if want == "" {
			want = kind.String()
		}
		return Token{}, errf(t.Pos, "expected %q, found %q", want, t.Text)
	}
	p.pos++
	return t, nil
}

func (p *Parser) expectKeyword(word string) error {
	_, err := p.expect(KEYWORD, word)
	return err
}

// parseIdent accepts a plain or quoted identifier.
func (p *Parser) parseIdent() (string, error) {
	t := p.cur()
	if t.Kind == IDENT || t.Kind == QUOTED_IDENT {
		p.pos++
		return t.Text, nil
	}
	return "", errf(t.Pos, "expected identifier, found %q", t.Text)
}

func (p *Parser) parseSelectStmt() (*SelectStmt, error) {
	stmt := &SelectStmt{}
	if p.accept(KEYWORD, "WITH") {
		for {
			cte, err := p.parseCTE()
			if err != nil {
				return nil, err
			}
			stmt.With = append(stmt.With, cte)
			if !p.accept(SYMBOL, ",") {
				break
			}
		}
	}
	core, err := p.parseSelectCore()
	if err != nil {
		return nil, err
	}
	stmt.Core = core
	for p.atKeyword("UNION", "EXCEPT", "INTERSECT") {
		var op CompoundOp
		switch p.cur().Text {
		case "UNION":
			p.pos++
			if p.accept(KEYWORD, "ALL") {
				op = UnionAllOp
			} else {
				op = UnionOp
			}
		case "EXCEPT":
			p.pos++
			op = ExceptOp
		case "INTERSECT":
			p.pos++
			op = IntersectOp
		}
		c, err := p.parseSelectCore()
		if err != nil {
			return nil, err
		}
		stmt.Compound = append(stmt.Compound, CompoundPart{Op: op, Core: c})
	}
	if p.accept(KEYWORD, "ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		items, err := p.parseOrderItems()
		if err != nil {
			return nil, err
		}
		stmt.OrderBy = items
	}
	if p.accept(KEYWORD, "LIMIT") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Limit = e
	}
	if p.accept(KEYWORD, "OFFSET") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Offset = e
	}
	return stmt, nil
}

func (p *Parser) parseCTE() (CTE, error) {
	name, err := p.parseIdent()
	if err != nil {
		return CTE{}, err
	}
	cte := CTE{Name: name}
	if p.accept(SYMBOL, "(") {
		for {
			col, err := p.parseIdent()
			if err != nil {
				return CTE{}, err
			}
			cte.Columns = append(cte.Columns, col)
			if !p.accept(SYMBOL, ",") {
				break
			}
		}
		if _, err := p.expect(SYMBOL, ")"); err != nil {
			return CTE{}, err
		}
	}
	if err := p.expectKeyword("AS"); err != nil {
		return CTE{}, err
	}
	if _, err := p.expect(SYMBOL, "("); err != nil {
		return CTE{}, err
	}
	sel, err := p.parseSelectStmt()
	if err != nil {
		return CTE{}, err
	}
	if _, err := p.expect(SYMBOL, ")"); err != nil {
		return CTE{}, err
	}
	cte.Select = sel
	return cte, nil
}

func (p *Parser) parseSelectCore() (*SelectCore, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	core := &SelectCore{}
	core.Distinct = p.accept(KEYWORD, "DISTINCT")
	p.accept(KEYWORD, "ALL")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		core.Items = append(core.Items, item)
		if !p.accept(SYMBOL, ",") {
			break
		}
	}
	if p.accept(KEYWORD, "FROM") {
		from, err := p.parseTableExpr()
		if err != nil {
			return nil, err
		}
		core.From = from
	}
	if p.accept(KEYWORD, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		core.Where = e
	}
	if p.accept(KEYWORD, "GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			core.GroupBy = append(core.GroupBy, e)
			if !p.accept(SYMBOL, ",") {
				break
			}
		}
	}
	if p.accept(KEYWORD, "HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		core.Having = e
	}
	return core, nil
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	if p.accept(SYMBOL, "*") {
		return SelectItem{Star: true}, nil
	}
	// table.* form: IDENT "." "*"
	if p.cur().Kind == IDENT || p.cur().Kind == QUOTED_IDENT {
		if p.pos+2 < len(p.toks) &&
			p.toks[p.pos+1].Kind == SYMBOL && p.toks[p.pos+1].Text == "." &&
			p.toks[p.pos+2].Kind == SYMBOL && p.toks[p.pos+2].Text == "*" {
			table := p.cur().Text
			p.pos += 3
			return SelectItem{Star: true, Table: table}, nil
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept(KEYWORD, "AS") {
		alias, err := p.parseIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	} else if p.cur().Kind == IDENT || p.cur().Kind == QUOTED_IDENT {
		item.Alias = p.cur().Text
		p.pos++
	}
	return item, nil
}

func (p *Parser) parseOrderItems() ([]OrderItem, error) {
	var items []OrderItem
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		item := OrderItem{Expr: e}
		if p.accept(KEYWORD, "DESC") {
			item.Desc = true
		} else {
			p.accept(KEYWORD, "ASC")
		}
		// Accept and ignore NULLS FIRST / NULLS LAST (engine uses a fixed rule).
		if p.accept(KEYWORD, "NULLS") {
			if !p.accept(KEYWORD, "FIRST") && !p.accept(KEYWORD, "LAST") {
				return nil, errf(p.cur().Pos, "expected FIRST or LAST after NULLS")
			}
		}
		items = append(items, item)
		if !p.accept(SYMBOL, ",") {
			break
		}
	}
	return items, nil
}

// parseTableExpr parses a FROM clause content: comma-joined factors and
// explicit JOIN chains. Comma joins are normalized to CROSS JOIN nodes.
func (p *Parser) parseTableExpr() (TableExpr, error) {
	left, err := p.parseJoinChain()
	if err != nil {
		return nil, err
	}
	for p.accept(SYMBOL, ",") {
		right, err := p.parseJoinChain()
		if err != nil {
			return nil, err
		}
		left = &JoinExpr{Kind: CrossJoin, Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseJoinChain() (TableExpr, error) {
	left, err := p.parseTableFactor()
	if err != nil {
		return nil, err
	}
	for {
		kind, ok := p.acceptJoinKeyword()
		if !ok {
			return left, nil
		}
		right, err := p.parseTableFactor()
		if err != nil {
			return nil, err
		}
		join := &JoinExpr{Kind: kind, Left: left, Right: right}
		if kind != CrossJoin {
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			join.On = on
		}
		left = join
	}
}

func (p *Parser) acceptJoinKeyword() (JoinKind, bool) {
	switch {
	case p.accept(KEYWORD, "JOIN"):
		return InnerJoin, true
	case p.accept(KEYWORD, "INNER"):
		p.accept(KEYWORD, "JOIN")
		return InnerJoin, true
	case p.accept(KEYWORD, "LEFT"):
		p.accept(KEYWORD, "OUTER")
		p.accept(KEYWORD, "JOIN")
		return LeftJoin, true
	case p.accept(KEYWORD, "RIGHT"):
		p.accept(KEYWORD, "OUTER")
		p.accept(KEYWORD, "JOIN")
		return RightJoin, true
	case p.accept(KEYWORD, "FULL"):
		p.accept(KEYWORD, "OUTER")
		p.accept(KEYWORD, "JOIN")
		return FullJoin, true
	case p.accept(KEYWORD, "CROSS"):
		p.accept(KEYWORD, "JOIN")
		return CrossJoin, true
	}
	return 0, false
}

func (p *Parser) parseTableFactor() (TableExpr, error) {
	if p.accept(SYMBOL, "(") {
		sel, err := p.parseSelectStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(SYMBOL, ")"); err != nil {
			return nil, err
		}
		sub := &SubqueryTable{Select: sel}
		p.accept(KEYWORD, "AS")
		if p.cur().Kind == IDENT || p.cur().Kind == QUOTED_IDENT {
			sub.Alias = p.cur().Text
			p.pos++
		}
		return sub, nil
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	tn := &TableName{Name: name}
	if p.accept(KEYWORD, "AS") {
		alias, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		tn.Alias = alias
	} else if p.cur().Kind == IDENT || p.cur().Kind == QUOTED_IDENT {
		tn.Alias = p.cur().Text
		p.pos++
	}
	return tn, nil
}

// Expression parsing: precedence climbing.
//
//	OR
//	AND
//	NOT (prefix)
//	comparison / IS / IN / LIKE / BETWEEN
//	additive (+ - ||)
//	multiplicative (* / %)
//	unary (- +)
//	primary

func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(KEYWORD, "OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: "OR", L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.at(KEYWORD, "AND") {
		// Do not consume the AND of "BETWEEN x AND y" — parseComparison
		// handles BETWEEN fully, so any AND seen here is a logical AND.
		p.pos++
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: "AND", L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.at(KEYWORD, "NOT") && !p.atNotExists() {
		p.pos++
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *Parser) atNotExists() bool {
	return p.at(KEYWORD, "NOT") && p.pos+1 < len(p.toks) &&
		p.toks[p.pos+1].Kind == KEYWORD && p.toks[p.pos+1].Text == "EXISTS"
}

func (p *Parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(SYMBOL, "=") || p.at(SYMBOL, "<>") || p.at(SYMBOL, "!=") ||
			p.at(SYMBOL, "<") || p.at(SYMBOL, "<=") || p.at(SYMBOL, ">") || p.at(SYMBOL, ">="):
			op := p.cur().Text
			if op == "!=" {
				op = "<>"
			}
			p.pos++
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: op, L: left, R: right}
		case p.at(KEYWORD, "IS"):
			p.pos++
			not := p.accept(KEYWORD, "NOT")
			if err := p.expectKeyword("NULL"); err != nil {
				return nil, err
			}
			left = &IsNullExpr{X: left, Not: not}
		case p.at(KEYWORD, "IN"):
			p.pos++
			in, err := p.parseInTail(left, false)
			if err != nil {
				return nil, err
			}
			left = in
		case p.at(KEYWORD, "LIKE"):
			p.pos++
			pat, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &LikeExpr{X: left, Pattern: pat}
		case p.at(KEYWORD, "BETWEEN"):
			p.pos++
			b, err := p.parseBetweenTail(left, false)
			if err != nil {
				return nil, err
			}
			left = b
		case p.at(KEYWORD, "NOT"):
			// x NOT IN / NOT LIKE / NOT BETWEEN
			next := p.toks[p.pos+1]
			if next.Kind != KEYWORD {
				return left, nil
			}
			switch next.Text {
			case "IN":
				p.pos += 2
				in, err := p.parseInTail(left, true)
				if err != nil {
					return nil, err
				}
				left = in
			case "LIKE":
				p.pos += 2
				pat, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				left = &LikeExpr{X: left, Not: true, Pattern: pat}
			case "BETWEEN":
				p.pos += 2
				b, err := p.parseBetweenTail(left, true)
				if err != nil {
					return nil, err
				}
				left = b
			default:
				return left, nil
			}
		default:
			return left, nil
		}
	}
}

func (p *Parser) parseInTail(x Expr, not bool) (Expr, error) {
	if _, err := p.expect(SYMBOL, "("); err != nil {
		return nil, err
	}
	if p.at(KEYWORD, "SELECT") || p.at(KEYWORD, "WITH") {
		sel, err := p.parseSelectStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(SYMBOL, ")"); err != nil {
			return nil, err
		}
		return &InExpr{X: x, Not: not, Select: sel}, nil
	}
	in := &InExpr{X: x, Not: not}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		in.List = append(in.List, e)
		if !p.accept(SYMBOL, ",") {
			break
		}
	}
	if _, err := p.expect(SYMBOL, ")"); err != nil {
		return nil, err
	}
	return in, nil
}

func (p *Parser) parseBetweenTail(x Expr, not bool) (Expr, error) {
	lo, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AND"); err != nil {
		return nil, err
	}
	hi, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	return &BetweenExpr{X: x, Not: not, Lo: lo, Hi: hi}, nil
}

func (p *Parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.at(SYMBOL, "+") || p.at(SYMBOL, "-") || p.at(SYMBOL, "||") {
		op := p.cur().Text
		p.pos++
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at(SYMBOL, "*") || p.at(SYMBOL, "/") || p.at(SYMBOL, "%") {
		op := p.cur().Text
		p.pos++
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.at(SYMBOL, "-") || p.at(SYMBOL, "+") {
		op := p.cur().Text
		p.pos++
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: op, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == NUMBER:
		p.pos++
		return &NumberLit{Text: t.Text}, nil
	case t.Kind == STRING:
		p.pos++
		return &StringLit{Val: t.Text}, nil
	case p.at(KEYWORD, "NULL"):
		p.pos++
		return &NullLit{}, nil
	case p.at(KEYWORD, "TRUE"):
		p.pos++
		return &BoolLit{Val: true}, nil
	case p.at(KEYWORD, "FALSE"):
		p.pos++
		return &BoolLit{Val: false}, nil
	case p.at(KEYWORD, "CASE"):
		return p.parseCase()
	case p.at(KEYWORD, "CAST"):
		return p.parseCast()
	case p.at(KEYWORD, "EXISTS"):
		p.pos++
		return p.parseExistsTail(false)
	case p.atNotExists():
		p.pos += 2
		return p.parseExistsTail(true)
	case p.at(SYMBOL, "("):
		p.pos++
		if p.at(KEYWORD, "SELECT") || p.at(KEYWORD, "WITH") {
			sel, err := p.parseSelectStmt()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(SYMBOL, ")"); err != nil {
				return nil, err
			}
			return &SubqueryExpr{Select: sel}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(SYMBOL, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.Kind == IDENT || t.Kind == QUOTED_IDENT:
		return p.parseIdentExpr()
	}
	return nil, errf(t.Pos, "unexpected %s %q in expression", t.Kind, t.Text)
}

func (p *Parser) parseExistsTail(not bool) (Expr, error) {
	if _, err := p.expect(SYMBOL, "("); err != nil {
		return nil, err
	}
	sel, err := p.parseSelectStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(SYMBOL, ")"); err != nil {
		return nil, err
	}
	return &ExistsExpr{Not: not, Select: sel}, nil
}

func (p *Parser) parseCase() (Expr, error) {
	if err := p.expectKeyword("CASE"); err != nil {
		return nil, err
	}
	ce := &CaseExpr{}
	if !p.at(KEYWORD, "WHEN") {
		operand, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Operand = operand
	}
	for p.accept(KEYWORD, "WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Whens = append(ce.Whens, When{Cond: cond, Then: then})
	}
	if len(ce.Whens) == 0 {
		return nil, errf(p.cur().Pos, "CASE requires at least one WHEN arm")
	}
	if p.accept(KEYWORD, "ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return ce, nil
}

func (p *Parser) parseCast() (Expr, error) {
	if err := p.expectKeyword("CAST"); err != nil {
		return nil, err
	}
	if _, err := p.expect(SYMBOL, "("); err != nil {
		return nil, err
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	// Type name: one or more identifiers with optional (n[,m]) suffix.
	var parts []string
	for p.cur().Kind == IDENT || p.cur().Kind == QUOTED_IDENT {
		parts = append(parts, strings.ToUpper(p.cur().Text))
		p.pos++
	}
	if len(parts) == 0 {
		return nil, errf(p.cur().Pos, "expected type name in CAST")
	}
	if p.accept(SYMBOL, "(") {
		for !p.at(SYMBOL, ")") {
			if p.at(EOF, "") {
				return nil, errf(p.cur().Pos, "unterminated type suffix in CAST")
			}
			p.pos++
		}
		p.pos++
	}
	if _, err := p.expect(SYMBOL, ")"); err != nil {
		return nil, err
	}
	return &CastExpr{X: x, Type: strings.Join(parts, " ")}, nil
}

// parseIdentExpr parses column references and function calls beginning with
// an identifier.
func (p *Parser) parseIdentExpr() (Expr, error) {
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if p.at(SYMBOL, "(") {
		return p.parseFuncTail(name)
	}
	if p.accept(SYMBOL, ".") {
		col, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		return &ColumnRef{Table: name, Name: col}, nil
	}
	return &ColumnRef{Name: name}, nil
}

func (p *Parser) parseFuncTail(name string) (Expr, error) {
	if _, err := p.expect(SYMBOL, "("); err != nil {
		return nil, err
	}
	fc := &FuncCall{Name: strings.ToUpper(name)}
	switch {
	case p.accept(SYMBOL, "*"):
		fc.Star = true
	case p.at(SYMBOL, ")"):
		// zero-arg call
	default:
		fc.Distinct = p.accept(KEYWORD, "DISTINCT")
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			fc.Args = append(fc.Args, e)
			if !p.accept(SYMBOL, ",") {
				break
			}
		}
	}
	if _, err := p.expect(SYMBOL, ")"); err != nil {
		return nil, err
	}
	if p.accept(KEYWORD, "OVER") {
		if _, err := p.expect(SYMBOL, "("); err != nil {
			return nil, err
		}
		w := &WindowDef{}
		if p.accept(KEYWORD, "PARTITION") {
			if err := p.expectKeyword("BY"); err != nil {
				return nil, err
			}
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				w.PartitionBy = append(w.PartitionBy, e)
				if !p.accept(SYMBOL, ",") {
					break
				}
			}
		}
		if p.accept(KEYWORD, "ORDER") {
			if err := p.expectKeyword("BY"); err != nil {
				return nil, err
			}
			items, err := p.parseOrderItems()
			if err != nil {
				return nil, err
			}
			w.OrderBy = items
		}
		if _, err := p.expect(SYMBOL, ")"); err != nil {
			return nil, err
		}
		fc.Over = w
	}
	return fc, nil
}
