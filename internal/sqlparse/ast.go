package sqlparse

// SelectStmt is a full SELECT statement: optional WITH clause, a first
// select core, optional compound (UNION/EXCEPT/INTERSECT) tails, and
// statement-level ORDER BY / LIMIT / OFFSET.
type SelectStmt struct {
	With     []CTE
	Core     *SelectCore
	Compound []CompoundPart
	OrderBy  []OrderItem
	Limit    Expr // nil when absent
	Offset   Expr // nil when absent
}

// CTE is a single WITH-clause entry: name AS (select).
type CTE struct {
	Name    string
	Columns []string // optional explicit column list
	Select  *SelectStmt
}

// CompoundOp is a set operation joining select cores.
type CompoundOp int

// Compound operators.
const (
	UnionOp CompoundOp = iota
	UnionAllOp
	ExceptOp
	IntersectOp
)

func (op CompoundOp) String() string {
	switch op {
	case UnionOp:
		return "UNION"
	case UnionAllOp:
		return "UNION ALL"
	case ExceptOp:
		return "EXCEPT"
	case IntersectOp:
		return "INTERSECT"
	}
	return "?"
}

// CompoundPart is one set-operation tail: op followed by a select core.
type CompoundPart struct {
	Op   CompoundOp
	Core *SelectCore
}

// SelectCore is one SELECT ... FROM ... WHERE ... GROUP BY ... HAVING ...
// block without statement-level clauses.
type SelectCore struct {
	Distinct bool
	Items    []SelectItem
	From     TableExpr // nil when the statement has no FROM clause
	Where    Expr      // nil when absent
	GroupBy  []Expr
	Having   Expr // nil when absent
}

// SelectItem is a single projection: an expression with an optional alias,
// or a star (optionally table-qualified).
type SelectItem struct {
	Expr  Expr   // nil when Star
	Alias string // optional
	Star  bool
	Table string // qualifier for table.* form
}

// OrderItem is one ORDER BY element.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// TableExpr is anything that can appear in a FROM clause.
type TableExpr interface{ tableNode() }

// TableName references a base table or CTE, optionally aliased.
type TableName struct {
	Name  string
	Alias string
}

// SubqueryTable is a parenthesized SELECT used as a table, with an alias.
type SubqueryTable struct {
	Select *SelectStmt
	Alias  string
}

// JoinKind distinguishes join flavours.
type JoinKind int

// Join kinds.
const (
	InnerJoin JoinKind = iota
	LeftJoin
	RightJoin
	FullJoin
	CrossJoin
)

func (k JoinKind) String() string {
	switch k {
	case InnerJoin:
		return "JOIN"
	case LeftJoin:
		return "LEFT JOIN"
	case RightJoin:
		return "RIGHT JOIN"
	case FullJoin:
		return "FULL JOIN"
	case CrossJoin:
		return "CROSS JOIN"
	}
	return "?"
}

// JoinExpr combines two table expressions.
type JoinExpr struct {
	Kind  JoinKind
	Left  TableExpr
	Right TableExpr
	On    Expr // nil for CROSS JOIN
}

func (*TableName) tableNode()     {}
func (*SubqueryTable) tableNode() {}
func (*JoinExpr) tableNode()      {}

// Expr is any scalar expression node.
type Expr interface{ exprNode() }

// ColumnRef names a column, optionally qualified by table or alias.
type ColumnRef struct {
	Table string // empty when unqualified
	Name  string
}

// NumberLit is a numeric literal; Text preserves the source spelling.
type NumberLit struct{ Text string }

// StringLit is a single-quoted string literal (unescaped).
type StringLit struct{ Val string }

// NullLit is the NULL literal.
type NullLit struct{}

// BoolLit is TRUE or FALSE.
type BoolLit struct{ Val bool }

// Unary applies a prefix operator: "-", "+" or "NOT".
type Unary struct {
	Op string
	X  Expr
}

// Binary applies an infix operator: arithmetic, comparison, AND/OR or "||".
type Binary struct {
	Op   string
	L, R Expr
}

// FuncCall is a function invocation, possibly an aggregate (with DISTINCT or
// *) and possibly windowed with OVER.
type FuncCall struct {
	Name     string
	Distinct bool
	Star     bool // COUNT(*)
	Args     []Expr
	Over     *WindowDef // nil for non-window calls
}

// WindowDef is the OVER (...) specification.
type WindowDef struct {
	PartitionBy []Expr
	OrderBy     []OrderItem
}

// When is one WHEN ... THEN ... arm of a CASE expression.
type When struct {
	Cond Expr
	Then Expr
}

// CaseExpr is CASE [operand] WHEN ... THEN ... [ELSE ...] END.
type CaseExpr struct {
	Operand Expr // nil for searched CASE
	Whens   []When
	Else    Expr // nil when absent
}

// CastExpr is CAST(x AS type).
type CastExpr struct {
	X    Expr
	Type string
}

// InExpr is x [NOT] IN (list) or x [NOT] IN (select).
type InExpr struct {
	X      Expr
	Not    bool
	List   []Expr
	Select *SelectStmt // nil unless subquery form
}

// BetweenExpr is x [NOT] BETWEEN lo AND hi.
type BetweenExpr struct {
	X      Expr
	Not    bool
	Lo, Hi Expr
}

// LikeExpr is x [NOT] LIKE pattern.
type LikeExpr struct {
	X       Expr
	Not     bool
	Pattern Expr
}

// IsNullExpr is x IS [NOT] NULL.
type IsNullExpr struct {
	X   Expr
	Not bool
}

// ExistsExpr is [NOT] EXISTS (select).
type ExistsExpr struct {
	Not    bool
	Select *SelectStmt
}

// SubqueryExpr is a scalar subquery.
type SubqueryExpr struct{ Select *SelectStmt }

func (*ColumnRef) exprNode()    {}
func (*NumberLit) exprNode()    {}
func (*StringLit) exprNode()    {}
func (*NullLit) exprNode()      {}
func (*BoolLit) exprNode()      {}
func (*Unary) exprNode()        {}
func (*Binary) exprNode()       {}
func (*FuncCall) exprNode()     {}
func (*CaseExpr) exprNode()     {}
func (*CastExpr) exprNode()     {}
func (*InExpr) exprNode()       {}
func (*BetweenExpr) exprNode()  {}
func (*LikeExpr) exprNode()     {}
func (*IsNullExpr) exprNode()   {}
func (*ExistsExpr) exprNode()   {}
func (*SubqueryExpr) exprNode() {}

// WalkExprs calls fn for every expression node reachable from e, including e
// itself. It does not descend into subquery statements.
func WalkExprs(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *Unary:
		WalkExprs(x.X, fn)
	case *Binary:
		WalkExprs(x.L, fn)
		WalkExprs(x.R, fn)
	case *FuncCall:
		for _, a := range x.Args {
			WalkExprs(a, fn)
		}
		if x.Over != nil {
			for _, p := range x.Over.PartitionBy {
				WalkExprs(p, fn)
			}
			for _, o := range x.Over.OrderBy {
				WalkExprs(o.Expr, fn)
			}
		}
	case *CaseExpr:
		WalkExprs(x.Operand, fn)
		for _, w := range x.Whens {
			WalkExprs(w.Cond, fn)
			WalkExprs(w.Then, fn)
		}
		WalkExprs(x.Else, fn)
	case *CastExpr:
		WalkExprs(x.X, fn)
	case *InExpr:
		WalkExprs(x.X, fn)
		for _, it := range x.List {
			WalkExprs(it, fn)
		}
	case *BetweenExpr:
		WalkExprs(x.X, fn)
		WalkExprs(x.Lo, fn)
		WalkExprs(x.Hi, fn)
	case *LikeExpr:
		WalkExprs(x.X, fn)
		WalkExprs(x.Pattern, fn)
	case *IsNullExpr:
		WalkExprs(x.X, fn)
	}
}
