package sqlparse

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasics(t *testing.T) {
	tests := []struct {
		name  string
		src   string
		want  []string
		kinds []TokenKind
	}{
		{
			name:  "keywords and idents",
			src:   "SELECT name FROM users",
			want:  []string{"SELECT", "name", "FROM", "users", ""},
			kinds: []TokenKind{KEYWORD, IDENT, KEYWORD, IDENT, EOF},
		},
		{
			name:  "case insensitive keywords",
			src:   "select Name frOm T",
			want:  []string{"SELECT", "Name", "FROM", "T", ""},
			kinds: []TokenKind{KEYWORD, IDENT, KEYWORD, IDENT, EOF},
		},
		{
			name:  "numbers",
			src:   "1 2.5 .5 1e3 1.5E-2",
			want:  []string{"1", "2.5", ".5", "1e3", "1.5E-2", ""},
			kinds: []TokenKind{NUMBER, NUMBER, NUMBER, NUMBER, NUMBER, EOF},
		},
		{
			name:  "string with embedded double quotes",
			src:   `'YYYY"Q"Q'`,
			want:  []string{`YYYY"Q"Q`, ""},
			kinds: []TokenKind{STRING, EOF},
		},
		{
			name:  "string with escaped quote",
			src:   "'it''s'",
			want:  []string{"it's", ""},
			kinds: []TokenKind{STRING, EOF},
		},
		{
			name:  "quoted identifier",
			src:   `"Order Total"`,
			want:  []string{"Order Total", ""},
			kinds: []TokenKind{QUOTED_IDENT, EOF},
		},
		{
			name:  "two char symbols",
			src:   "a <= b <> c != d || e >= f",
			want:  []string{"a", "<=", "b", "<>", "c", "!=", "d", "||", "e", ">=", "f", ""},
			kinds: []TokenKind{IDENT, SYMBOL, IDENT, SYMBOL, IDENT, SYMBOL, IDENT, SYMBOL, IDENT, SYMBOL, IDENT, EOF},
		},
		{
			name:  "line comment",
			src:   "SELECT 1 -- trailing\n, 2",
			want:  []string{"SELECT", "1", ",", "2", ""},
			kinds: []TokenKind{KEYWORD, NUMBER, SYMBOL, NUMBER, EOF},
		},
		{
			name:  "block comment",
			src:   "SELECT /* inline */ 1",
			want:  []string{"SELECT", "1", ""},
			kinds: []TokenKind{KEYWORD, NUMBER, EOF},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			toks, err := Lex(tt.src)
			if err != nil {
				t.Fatalf("Lex(%q): %v", tt.src, err)
			}
			if len(toks) != len(tt.want) {
				t.Fatalf("got %d tokens, want %d: %v", len(toks), len(tt.want), toks)
			}
			for i := range toks {
				if toks[i].Text != tt.want[i] || toks[i].Kind != tt.kinds[i] {
					t.Errorf("token %d = (%v, %q), want (%v, %q)",
						i, toks[i].Kind, toks[i].Text, tt.kinds[i], tt.want[i])
				}
			}
		})
	}
}

func TestLexErrors(t *testing.T) {
	tests := []struct {
		src  string
		want string
	}{
		{"'unterminated", "unterminated string"},
		{`"unterminated`, "unterminated quoted identifier"},
		{"/* open", "unterminated block comment"},
		{"SELECT @x", "unexpected character"},
		{"12abc", "malformed number"},
	}
	for _, tt := range tests {
		_, err := Lex(tt.src)
		if err == nil {
			t.Errorf("Lex(%q): want error containing %q, got nil", tt.src, tt.want)
			continue
		}
		if !strings.Contains(err.Error(), tt.want) {
			t.Errorf("Lex(%q) error = %q, want containing %q", tt.src, err, tt.want)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("SELECT\n  x")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("SELECT pos = %v, want 1:1", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("x pos = %v, want 2:3", toks[1].Pos)
	}
}

func TestLexKindsOnAppendixQuery(t *testing.T) {
	toks, err := Lex(appendixQuery)
	if err != nil {
		t.Fatalf("lexing appendix query: %v", err)
	}
	ks := kinds(toks)
	if ks[len(ks)-1] != EOF {
		t.Error("token stream not EOF-terminated")
	}
	if len(toks) < 100 {
		t.Errorf("appendix query produced only %d tokens; expected a long stream", len(toks))
	}
}
