package sqlparse

import (
	"strings"
)

// Lexer splits SQL text into tokens. It is resilient to warehouse-style
// literals such as 'YYYY"Q"Q' (double quotes inside single-quoted strings)
// and doubled-quote escapes (” inside strings, "" inside quoted
// identifiers).
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Lex tokenizes the whole input, returning the token stream terminated by an
// EOF token.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		tok, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.Kind == EOF {
			return toks, nil
		}
	}
}

func (l *Lexer) pos() Pos { return Pos{Offset: l.off, Line: l.line, Col: l.col} }

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peekAt(n int) byte {
	if l.off+n >= len(l.src) {
		return 0
	}
	return l.src[l.off+n]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '-' && l.peekAt(1) == '-':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peekAt(1) == '*':
			start := l.pos()
			l.advance()
			l.advance()
			for {
				if l.off >= len(l.src) {
					return errf(start, "unterminated block comment")
				}
				if l.peek() == '*' && l.peekAt(1) == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token in the stream.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	start := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: EOF, Pos: start}, nil
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		return l.lexWord(start), nil
	case isDigit(c), c == '.' && isDigit(l.peekAt(1)):
		return l.lexNumber(start)
	case c == '\'':
		return l.lexString(start)
	case c == '"':
		return l.lexQuotedIdent(start)
	default:
		return l.lexSymbol(start)
	}
}

func (l *Lexer) lexWord(start Pos) Token {
	begin := l.off
	for l.off < len(l.src) && isIdentPart(l.peek()) {
		l.advance()
	}
	word := l.src[begin:l.off]
	upper := strings.ToUpper(word)
	if keywords[upper] {
		return Token{Kind: KEYWORD, Text: upper, Pos: start}
	}
	return Token{Kind: IDENT, Text: word, Pos: start}
}

func (l *Lexer) lexNumber(start Pos) (Token, error) {
	begin := l.off
	seenDot := false
	for l.off < len(l.src) {
		c := l.peek()
		if isDigit(c) {
			l.advance()
			continue
		}
		if c == '.' && !seenDot {
			seenDot = true
			l.advance()
			continue
		}
		if (c == 'e' || c == 'E') && (isDigit(l.peekAt(1)) ||
			((l.peekAt(1) == '+' || l.peekAt(1) == '-') && isDigit(l.peekAt(2)))) {
			l.advance()
			if l.peek() == '+' || l.peek() == '-' {
				l.advance()
			}
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
			break
		}
		break
	}
	text := l.src[begin:l.off]
	if l.off < len(l.src) && isIdentStart(l.peek()) {
		return Token{}, errf(start, "malformed number %q", text+string(l.peek()))
	}
	return Token{Kind: NUMBER, Text: text, Pos: start}, nil
}

func (l *Lexer) lexString(start Pos) (Token, error) {
	l.advance() // opening quote
	var sb strings.Builder
	for {
		if l.off >= len(l.src) {
			return Token{}, errf(start, "unterminated string literal")
		}
		c := l.advance()
		if c == '\'' {
			if l.peek() == '\'' { // escaped quote
				l.advance()
				sb.WriteByte('\'')
				continue
			}
			return Token{Kind: STRING, Text: sb.String(), Pos: start}, nil
		}
		sb.WriteByte(c)
	}
}

func (l *Lexer) lexQuotedIdent(start Pos) (Token, error) {
	l.advance() // opening quote
	var sb strings.Builder
	for {
		if l.off >= len(l.src) {
			return Token{}, errf(start, "unterminated quoted identifier")
		}
		c := l.advance()
		if c == '"' {
			if l.peek() == '"' {
				l.advance()
				sb.WriteByte('"')
				continue
			}
			return Token{Kind: QUOTED_IDENT, Text: sb.String(), Pos: start}, nil
		}
		sb.WriteByte(c)
	}
}

// twoCharSymbols are the multi-byte operators, checked before single bytes.
var twoCharSymbols = []string{"<>", "!=", "<=", ">=", "||"}

func (l *Lexer) lexSymbol(start Pos) (Token, error) {
	rest := l.src[l.off:]
	for _, s := range twoCharSymbols {
		if strings.HasPrefix(rest, s) {
			l.advance()
			l.advance()
			return Token{Kind: SYMBOL, Text: s, Pos: start}, nil
		}
	}
	switch c := l.peek(); c {
	case '(', ')', ',', '.', ';', '*', '+', '-', '/', '%', '=', '<', '>':
		l.advance()
		return Token{Kind: SYMBOL, Text: string(c), Pos: start}, nil
	default:
		return Token{}, errf(start, "unexpected character %q", string(c))
	}
}
