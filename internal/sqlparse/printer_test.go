package sqlparse

import (
	"reflect"
	"testing"
)

// roundTripSources exercise the printer across the whole dialect.
var roundTripSources = []string{
	"SELECT 1",
	"SELECT a, b AS c FROM t",
	"SELECT DISTINCT a FROM t WHERE a > 1 AND b < 2 OR NOT c = 3",
	"SELECT * FROM t",
	"SELECT t.* FROM t",
	"SELECT COUNT(*) FROM t",
	"SELECT COUNT(DISTINCT a) FROM t GROUP BY b HAVING COUNT(*) > 2",
	"SELECT a FROM t ORDER BY a DESC, b LIMIT 5 OFFSET 2",
	"SELECT * FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y",
	"SELECT * FROM a CROSS JOIN b",
	"SELECT * FROM (SELECT x FROM t) AS sub",
	"WITH w AS (SELECT 1 AS x) SELECT x FROM w",
	"WITH w (a, b) AS (SELECT 1, 2) SELECT a FROM w",
	"SELECT CASE WHEN a = 1 THEN 'x' ELSE 'y' END FROM t",
	"SELECT CASE a WHEN 1 THEN 'x' END FROM t",
	"SELECT CAST(a AS FLOAT) FROM t",
	"SELECT NULLIF(a, 0), COALESCE(b, 1, 2) FROM t",
	"SELECT a FROM t WHERE b IN (1, 2) AND c NOT IN (SELECT d FROM u)",
	"SELECT a FROM t WHERE b BETWEEN 1 AND 2 AND c NOT BETWEEN 3 AND 4",
	"SELECT a FROM t WHERE b LIKE 'x%' AND c NOT LIKE '%y'",
	"SELECT a FROM t WHERE b IS NULL AND c IS NOT NULL",
	"SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u) AND NOT EXISTS (SELECT 1 FROM v)",
	"SELECT (SELECT MAX(x) FROM u) FROM t",
	"SELECT ROW_NUMBER() OVER (PARTITION BY a ORDER BY b DESC) FROM t",
	"SELECT SUM(x) OVER (ORDER BY y) FROM t",
	"SELECT a FROM t UNION SELECT a FROM u UNION ALL SELECT a FROM v",
	"SELECT a FROM t EXCEPT SELECT a FROM u",
	"SELECT a FROM t INTERSECT SELECT a FROM u",
	"SELECT -a, +b, NOT c FROM t",
	"SELECT a || '-' || b FROM t",
	"SELECT \"select\" FROM \"weird name\"",
	"SELECT TO_CHAR(d, 'YYYY\"Q\"Q') FROM t",
	appendixQuery,
}

// TestPrintParseIdentity checks the core printer property: re-parsing printed
// SQL yields a structurally identical AST.
func TestPrintParseIdentity(t *testing.T) {
	for _, src := range roundTripSources {
		stmt1 := mustParse(t, src)
		printed := Print(stmt1)
		stmt2, err := Parse(printed)
		if err != nil {
			t.Errorf("re-parse of %q failed: %v\nprinted: %s", src, err, printed)
			continue
		}
		if !reflect.DeepEqual(stmt1, stmt2) {
			t.Errorf("round trip changed AST for %q\nprinted: %s", src, printed)
		}
	}
}

// TestPrintIsFixpoint checks that printing is idempotent: print(parse(print))
// returns the identical string.
func TestPrintIsFixpoint(t *testing.T) {
	for _, src := range roundTripSources {
		p1 := Print(mustParse(t, src))
		p2 := Print(mustParse(t, p1))
		if p1 != p2 {
			t.Errorf("printer not a fixpoint:\nfirst:  %s\nsecond: %s", p1, p2)
		}
	}
}

func TestPrintQuotesReservedAliases(t *testing.T) {
	stmt := mustParse(t, `SELECT a AS "order" FROM t`)
	printed := Print(stmt)
	if want := `"order"`; !containsStr(printed, want) {
		t.Errorf("printed = %s, want alias quoted as %s", printed, want)
	}
}

func TestPrintEscapesStringQuotes(t *testing.T) {
	stmt := mustParse(t, "SELECT 'it''s' FROM t")
	printed := Print(stmt)
	if !containsStr(printed, "'it''s'") {
		t.Errorf("printed = %s, want escaped quote preserved", printed)
	}
}

func containsStr(haystack, needle string) bool {
	return len(haystack) >= len(needle) && indexOf(haystack, needle) >= 0
}

func indexOf(haystack, needle string) int {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return i
		}
	}
	return -1
}
