// Package sqlparse implements a lexer, parser and printer for the analytic
// SQL dialect used throughout the GenEdit reproduction. The dialect covers
// everything the paper's appendix query needs: common table expressions,
// joins, grouped and conditional aggregation, window functions, CASE
// expressions, CAST/NULLIF/COALESCE and warehouse-style TO_CHAR date
// formatting.
package sqlparse

import "fmt"

// TokenKind identifies the lexical class of a token.
type TokenKind int

// Token kinds. Keywords are lexed as KEYWORD with the normalized upper-case
// text in Token.Text; everything the parser treats specially is matched by
// that text.
const (
	EOF TokenKind = iota
	IDENT
	QUOTED_IDENT
	NUMBER
	STRING
	KEYWORD
	SYMBOL
)

func (k TokenKind) String() string {
	switch k {
	case EOF:
		return "end of input"
	case IDENT:
		return "identifier"
	case QUOTED_IDENT:
		return "quoted identifier"
	case NUMBER:
		return "number"
	case STRING:
		return "string"
	case KEYWORD:
		return "keyword"
	case SYMBOL:
		return "symbol"
	}
	return "unknown token"
}

// Pos is a byte offset plus human-readable line/column location in the input.
type Pos struct {
	Offset int
	Line   int
	Col    int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a single lexical element.
type Token struct {
	Kind TokenKind
	Text string // normalized: keywords upper-cased, strings unescaped
	Pos  Pos
}

// keywords is the set of reserved words recognized by the lexer. Unquoted
// identifiers matching these (case-insensitively) lex as KEYWORD.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "OFFSET": true, "AS": true,
	"AND": true, "OR": true, "NOT": true, "IN": true, "IS": true,
	"NULL": true, "LIKE": true, "BETWEEN": true, "CASE": true, "WHEN": true,
	"THEN": true, "ELSE": true, "END": true, "JOIN": true, "INNER": true,
	"LEFT": true, "RIGHT": true, "FULL": true, "OUTER": true, "ON": true,
	"CROSS": true, "WITH": true, "UNION": true, "ALL": true,
	"DISTINCT": true, "ASC": true, "DESC": true, "CAST": true, "OVER": true,
	"PARTITION": true, "EXISTS": true, "TRUE": true, "FALSE": true,
	"EXCEPT": true, "INTERSECT": true, "NULLS": true, "FIRST": true,
	"LAST": true, "USING": true,
}

// IsKeyword reports whether the upper-cased word is reserved in this dialect.
func IsKeyword(word string) bool { return keywords[word] }

// SyntaxError describes a lexing or parsing failure with its location.
type SyntaxError struct {
	Pos Pos
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("syntax error at %s: %s", e.Pos, e.Msg)
}

func errf(pos Pos, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
