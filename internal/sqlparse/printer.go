package sqlparse

import (
	"strings"
)

// Print renders a statement back to SQL text. The output is canonical: all
// keywords upper-case, binary expressions fully parenthesized, one space
// between tokens. Re-parsing printed output yields a structurally identical
// AST (tested as a property).
func Print(stmt *SelectStmt) string {
	var sb strings.Builder
	printStmt(&sb, stmt)
	return sb.String()
}

// PrintExpr renders a single expression to SQL text.
func PrintExpr(e Expr) string {
	var sb strings.Builder
	printExpr(&sb, e)
	return sb.String()
}

// PrintSelectItems renders a projection list (without the SELECT keyword).
func PrintSelectItems(items []SelectItem) string {
	var sb strings.Builder
	for i, item := range items {
		if i > 0 {
			sb.WriteString(", ")
		}
		switch {
		case item.Star && item.Table != "":
			sb.WriteString(quoteIdent(item.Table))
			sb.WriteString(".*")
		case item.Star:
			sb.WriteString("*")
		default:
			printExpr(&sb, item.Expr)
			if item.Alias != "" {
				sb.WriteString(" AS ")
				sb.WriteString(quoteIdent(item.Alias))
			}
		}
	}
	return sb.String()
}

// PrintTableExpr renders a FROM-clause table expression.
func PrintTableExpr(t TableExpr) string {
	var sb strings.Builder
	printTableExpr(&sb, t)
	return sb.String()
}

// PrintOrderItems renders an ORDER BY list (without the keywords).
func PrintOrderItems(items []OrderItem) string {
	var sb strings.Builder
	printOrderItems(&sb, items)
	return sb.String()
}

// PrintExprList renders a comma-separated expression list.
func PrintExprList(exprs []Expr) string {
	var sb strings.Builder
	for i, e := range exprs {
		if i > 0 {
			sb.WriteString(", ")
		}
		printExpr(&sb, e)
	}
	return sb.String()
}

func printStmt(sb *strings.Builder, stmt *SelectStmt) {
	if len(stmt.With) > 0 {
		sb.WriteString("WITH ")
		for i, cte := range stmt.With {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(quoteIdent(cte.Name))
			if len(cte.Columns) > 0 {
				sb.WriteString(" (")
				for j, c := range cte.Columns {
					if j > 0 {
						sb.WriteString(", ")
					}
					sb.WriteString(quoteIdent(c))
				}
				sb.WriteString(")")
			}
			sb.WriteString(" AS (")
			printStmt(sb, cte.Select)
			sb.WriteString(")")
		}
		sb.WriteString(" ")
	}
	printCore(sb, stmt.Core)
	for _, part := range stmt.Compound {
		sb.WriteString(" ")
		sb.WriteString(part.Op.String())
		sb.WriteString(" ")
		printCore(sb, part.Core)
	}
	if len(stmt.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		printOrderItems(sb, stmt.OrderBy)
	}
	if stmt.Limit != nil {
		sb.WriteString(" LIMIT ")
		printExpr(sb, stmt.Limit)
	}
	if stmt.Offset != nil {
		sb.WriteString(" OFFSET ")
		printExpr(sb, stmt.Offset)
	}
}

func printCore(sb *strings.Builder, core *SelectCore) {
	sb.WriteString("SELECT ")
	if core.Distinct {
		sb.WriteString("DISTINCT ")
	}
	for i, item := range core.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		switch {
		case item.Star && item.Table != "":
			sb.WriteString(quoteIdent(item.Table))
			sb.WriteString(".*")
		case item.Star:
			sb.WriteString("*")
		default:
			printExpr(sb, item.Expr)
			if item.Alias != "" {
				sb.WriteString(" AS ")
				sb.WriteString(quoteIdent(item.Alias))
			}
		}
	}
	if core.From != nil {
		sb.WriteString(" FROM ")
		printTableExpr(sb, core.From)
	}
	if core.Where != nil {
		sb.WriteString(" WHERE ")
		printExpr(sb, core.Where)
	}
	if len(core.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, e := range core.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			printExpr(sb, e)
		}
	}
	if core.Having != nil {
		sb.WriteString(" HAVING ")
		printExpr(sb, core.Having)
	}
}

func printOrderItems(sb *strings.Builder, items []OrderItem) {
	for i, it := range items {
		if i > 0 {
			sb.WriteString(", ")
		}
		printExpr(sb, it.Expr)
		if it.Desc {
			sb.WriteString(" DESC")
		}
	}
}

func printTableExpr(sb *strings.Builder, t TableExpr) {
	switch x := t.(type) {
	case *TableName:
		sb.WriteString(quoteIdent(x.Name))
		if x.Alias != "" {
			sb.WriteString(" AS ")
			sb.WriteString(quoteIdent(x.Alias))
		}
	case *SubqueryTable:
		sb.WriteString("(")
		printStmt(sb, x.Select)
		sb.WriteString(")")
		if x.Alias != "" {
			sb.WriteString(" AS ")
			sb.WriteString(quoteIdent(x.Alias))
		}
	case *JoinExpr:
		printTableExpr(sb, x.Left)
		sb.WriteString(" ")
		sb.WriteString(x.Kind.String())
		sb.WriteString(" ")
		printTableExpr(sb, x.Right)
		if x.On != nil {
			sb.WriteString(" ON ")
			printExpr(sb, x.On)
		}
	}
}

func printExpr(sb *strings.Builder, e Expr) {
	switch x := e.(type) {
	case *ColumnRef:
		if x.Table != "" {
			sb.WriteString(quoteIdent(x.Table))
			sb.WriteString(".")
		}
		sb.WriteString(quoteIdent(x.Name))
	case *NumberLit:
		sb.WriteString(x.Text)
	case *StringLit:
		sb.WriteString("'")
		sb.WriteString(strings.ReplaceAll(x.Val, "'", "''"))
		sb.WriteString("'")
	case *NullLit:
		sb.WriteString("NULL")
	case *BoolLit:
		if x.Val {
			sb.WriteString("TRUE")
		} else {
			sb.WriteString("FALSE")
		}
	case *Unary:
		if x.Op == "NOT" {
			sb.WriteString("NOT (")
			printExpr(sb, x.X)
			sb.WriteString(")")
		} else {
			sb.WriteString(x.Op)
			sb.WriteString("(")
			printExpr(sb, x.X)
			sb.WriteString(")")
		}
	case *Binary:
		sb.WriteString("(")
		printExpr(sb, x.L)
		sb.WriteString(" ")
		sb.WriteString(x.Op)
		sb.WriteString(" ")
		printExpr(sb, x.R)
		sb.WriteString(")")
	case *FuncCall:
		sb.WriteString(x.Name)
		sb.WriteString("(")
		switch {
		case x.Star:
			sb.WriteString("*")
		default:
			if x.Distinct {
				sb.WriteString("DISTINCT ")
			}
			for i, a := range x.Args {
				if i > 0 {
					sb.WriteString(", ")
				}
				printExpr(sb, a)
			}
		}
		sb.WriteString(")")
		if x.Over != nil {
			sb.WriteString(" OVER (")
			if len(x.Over.PartitionBy) > 0 {
				sb.WriteString("PARTITION BY ")
				for i, pexpr := range x.Over.PartitionBy {
					if i > 0 {
						sb.WriteString(", ")
					}
					printExpr(sb, pexpr)
				}
			}
			if len(x.Over.OrderBy) > 0 {
				if len(x.Over.PartitionBy) > 0 {
					sb.WriteString(" ")
				}
				sb.WriteString("ORDER BY ")
				printOrderItems(sb, x.Over.OrderBy)
			}
			sb.WriteString(")")
		}
	case *CaseExpr:
		sb.WriteString("CASE")
		if x.Operand != nil {
			sb.WriteString(" ")
			printExpr(sb, x.Operand)
		}
		for _, w := range x.Whens {
			sb.WriteString(" WHEN ")
			printExpr(sb, w.Cond)
			sb.WriteString(" THEN ")
			printExpr(sb, w.Then)
		}
		if x.Else != nil {
			sb.WriteString(" ELSE ")
			printExpr(sb, x.Else)
		}
		sb.WriteString(" END")
	case *CastExpr:
		sb.WriteString("CAST(")
		printExpr(sb, x.X)
		sb.WriteString(" AS ")
		sb.WriteString(x.Type)
		sb.WriteString(")")
	case *InExpr:
		sb.WriteString("(")
		printExpr(sb, x.X)
		if x.Not {
			sb.WriteString(" NOT IN (")
		} else {
			sb.WriteString(" IN (")
		}
		if x.Select != nil {
			printStmt(sb, x.Select)
		} else {
			for i, it := range x.List {
				if i > 0 {
					sb.WriteString(", ")
				}
				printExpr(sb, it)
			}
		}
		sb.WriteString("))")
	case *BetweenExpr:
		sb.WriteString("(")
		printExpr(sb, x.X)
		if x.Not {
			sb.WriteString(" NOT BETWEEN ")
		} else {
			sb.WriteString(" BETWEEN ")
		}
		printExpr(sb, x.Lo)
		sb.WriteString(" AND ")
		printExpr(sb, x.Hi)
		sb.WriteString(")")
	case *LikeExpr:
		sb.WriteString("(")
		printExpr(sb, x.X)
		if x.Not {
			sb.WriteString(" NOT LIKE ")
		} else {
			sb.WriteString(" LIKE ")
		}
		printExpr(sb, x.Pattern)
		sb.WriteString(")")
	case *IsNullExpr:
		sb.WriteString("(")
		printExpr(sb, x.X)
		if x.Not {
			sb.WriteString(" IS NOT NULL")
		} else {
			sb.WriteString(" IS NULL")
		}
		sb.WriteString(")")
	case *ExistsExpr:
		if x.Not {
			sb.WriteString("NOT ")
		}
		sb.WriteString("EXISTS (")
		printStmt(sb, x.Select)
		sb.WriteString(")")
	case *SubqueryExpr:
		sb.WriteString("(")
		printStmt(sb, x.Select)
		sb.WriteString(")")
	}
}

// quoteIdent renders an identifier, double-quoting it only when required
// (reserved word or non-identifier characters).
func quoteIdent(name string) string {
	if name == "" {
		return name
	}
	needQuote := IsKeyword(strings.ToUpper(name)) || !isIdentStart(name[0])
	if !needQuote {
		for i := 0; i < len(name); i++ {
			if !isIdentPart(name[i]) {
				needQuote = true
				break
			}
		}
	}
	if !needQuote {
		return name
	}
	return "\"" + strings.ReplaceAll(name, "\"", "\"\"") + "\""
}
