// Package parallel provides the bounded worker-pool primitive shared by the
// evaluation runner (case fan-out), the serving layer (GenerateBatch) and
// the SQL executor (morsel-driven intra-query parallelism). It is a leaf
// package with no project dependencies precisely so that sqlexec — which
// eval itself imports — can schedule morsels over the same pool discipline
// without an import cycle.
package parallel

import (
	"context"
	"sync"
)

// ForEach runs fn(i) for every i in [0, n), fanned out across at most
// workers goroutines (clamped to [1, n]). Once ctx is done no further
// indices are dispatched; indices already handed to a worker run to
// completion, and ForEach returns only after all dispatched work has
// finished. Callers detect an early stop via ctx.Err().
//
// With workers <= 1 the loop runs strictly sequentially on the calling
// goroutine, so callers that need deterministic single-threaded execution
// (e.g. the executor's serial reference path) get it without a scheduling
// layer in between.
func ForEach(ctx context.Context, workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return
			}
			fn(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
}
