package pipeline

import (
	"strconv"
	"strings"
	"testing"

	"genedit/internal/decompose"
	"genedit/internal/llm"
	"genedit/internal/simllm"
	"genedit/internal/task"
	"genedit/internal/workload"
)

func benchEngine(tb testing.TB, clauseEdit bool) (*Engine, *workload.Suite) {
	tb.Helper()
	suite := workload.NewSuite(1)
	kset, err := suite.BuildKnowledge("sports_holdings")
	if err != nil {
		tb.Fatal(err)
	}
	model := simllm.New(simllm.GenEditProfile(), suite.Registry, 42)
	cfg := DefaultConfig()
	cfg.ClauseEditCorrection = clauseEdit
	return New(model, kset, suite.Databases["sports_holdings"], cfg), suite
}

func benchCase(tb testing.TB, suite *workload.Suite, id string) *task.Case {
	tb.Helper()
	for _, c := range suite.Cases {
		if c.ID == id {
			return c
		}
	}
	tb.Fatalf("case %s not found", id)
	return nil
}

func mustDecompose(tb testing.TB, sql string) []decompose.Fragment {
	tb.Helper()
	frags, err := decompose.DecomposeSQL(sql)
	if err != nil {
		tb.Fatal(err)
	}
	return frags
}

func mustCompose(tb testing.TB, frags []decompose.Fragment) string {
	tb.Helper()
	sql, err := decompose.ComposeSQL(frags)
	if err != nil {
		tb.Fatal(err)
	}
	return sql
}

// failingVariant builds an exec-failing but parsable variant of the case's
// gold SQL by renaming one referenced column to a nonexistent one.
func failingVariant(t testing.TB, gold string) string {
	t.Helper()
	for _, col := range []string{"REVENUE", "VIEWS", "ORG_NAME"} {
		if strings.Contains(gold, col) {
			return strings.ReplaceAll(gold, col, col+"_MISSING")
		}
	}
	t.Fatalf("no known column to corrupt in %q", gold)
	return ""
}

// repairContext runs one real generation to obtain the prompt context and
// plan the correction operators receive.
func repairContext(t testing.TB, e *Engine, question, evidence string) (llm.Context, llm.Plan) {
	t.Helper()
	rec, err := e.Generate(question, evidence)
	if err != nil {
		t.Fatal(err)
	}
	return rec.Context, rec.Plan
}

func TestClauseEditRepairFixesExecFailure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ClauseEditCorrection = true
	engine, suite := testEngine(t, cfg)
	c := caseByID(t, suite, "sports_holdings-s-list-1")

	ctx, plan := repairContext(t, engine, c.Question, c.Evidence)
	failing := failingVariant(t, c.GoldSQL)
	if _, err := engine.exec.Query(failing); err == nil {
		t.Fatal("corrupted SQL unexpectedly executes")
	}

	// The per-clause edit draw can miss on any single attempt; the pipeline
	// retries with a new attempt number, so accept a fix on any of them.
	fixed := ""
	for attempt := 1; attempt <= 5; attempt++ {
		ctx.Attempt = attempt
		if out := engine.clauseEditRepair(&ctx, plan, failing, "unknown column"); out != "" {
			fixed = out
			break
		}
	}
	if fixed == "" {
		t.Fatal("clauseEditRepair proposed no repair in 5 attempts")
	}
	if _, err := engine.exec.Query(fixed); err != nil {
		t.Fatalf("repaired SQL still fails: %v\nsql: %s", err, fixed)
	}
}

func TestClauseEditRepairKnowledgeGated(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ClauseEditCorrection = true
	engine, suite := testEngine(t, cfg)
	// s-our depends on a domain term; without its definition in context the
	// editor must refuse rather than conjure the right filter from thin air.
	c := caseByID(t, suite, "sports_holdings-s-our")

	ctx, plan := repairContext(t, engine, c.Question, "")
	ctx.Instructions = nil
	ctx.Evidence = ""
	failing := failingVariant(t, c.GoldSQL)
	for attempt := 1; attempt <= 5; attempt++ {
		ctx.Attempt = attempt
		if out := engine.clauseEditRepair(&ctx, plan, failing, "unknown column"); out != "" {
			t.Fatalf("edit repair succeeded without the term definition: %s", out)
		}
	}
}

func TestApplyClauseEditsInsertDeleteReplace(t *testing.T) {
	engine, suite := testEngine(t, DefaultConfig())
	_ = engine
	c := caseByID(t, suite, "sports_holdings-s-top-1")
	// Replace the LIMIT, delete ORDER BY, insert HAVING on the final unit.
	frags := mustDecompose(t, c.GoldSQL)
	edited := applyClauseEdits(frags, []llm.ClauseEdit{
		{Unit: "", Clause: "limit", SQL: "7"},
		{Unit: "", Clause: "order_by", Delete: true},
		{Unit: "", Clause: "having", SQL: "COUNT(*) > 1"},
	})
	sql := mustCompose(t, edited)
	if !strings.Contains(sql, "LIMIT 7") || strings.Contains(sql, "ORDER BY") ||
		!strings.Contains(sql, "HAVING COUNT(*) > 1") {
		t.Fatalf("edits not applied: %s", sql)
	}
}

// execFailingEngines builds two engines over the same registry — correction
// by regeneration vs by clause editing — plus a case whose first generation
// attempt exec-fails: a decoy resolving to a nonexistent column. The decoy
// draw is not attempt-salted, so full regeneration deterministically repeats
// the mistake, while the clause editor repairs it against the decomposition.
func execFailingEngines(tb testing.TB) (regen, edit *Engine, c *task.Case) {
	tb.Helper()
	suite := workload.NewSuite(1)
	kset, err := suite.BuildKnowledge("sports_holdings")
	if err != nil {
		tb.Fatal(err)
	}
	model := simllm.New(simllm.GenEditProfile(), suite.Registry, 42)
	cfgOff := DefaultConfig()
	cfgOff.DisableSchemaLinking = true // decoy resolution runs unlinked
	cfgOn := cfgOff
	cfgOn.ClauseEditCorrection = true
	regen = New(model, kset, suite.Databases["sports_holdings"], cfgOff)
	edit = New(model, kset, suite.Databases["sports_holdings"], cfgOn)

	base := benchCase(tb, suite, "sports_holdings-s-top-1")
	// The decoy-resistance draw is keyed on the case ID; probe a few IDs
	// until one resolves to the (nonexistent) decoy column and exec-fails.
	for i := 0; i < 64; i++ {
		cand := &task.Case{
			ID: "bench-decoy-" + strconv.Itoa(i), DB: base.DB,
			Difficulty: base.Difficulty, Intent: base.Intent,
			Question: "benchmark decoy probe " + strconv.Itoa(i) + " top organisations by revenue",
			GoldSQL:  base.GoldSQL,
			Decoys: []task.DecoyRequirement{{
				CorrectColumn: "REVENUE", DecoyColumn: "REVENUE_GHOST",
				Table:    "SPORTS_FINANCIALS",
				WrongSQL: strings.ReplaceAll(base.GoldSQL, "REVENUE", "REVENUE_GHOST"),
			}},
		}
		suite.Registry.Add(cand)
		rec, err := regen.Generate(cand.Question, "")
		if err != nil {
			tb.Fatal(err)
		}
		if !rec.OK {
			return regen, edit, cand
		}
	}
	tb.Fatal("no exec-failing decoy case found in 64 probes")
	return nil, nil, nil
}

func TestClauseEditCorrectionConvergesWhereRegenerationRepeats(t *testing.T) {
	regen, edit, c := execFailingEngines(t)
	rec, err := regen.Generate(c.Question, "")
	if err != nil {
		t.Fatal(err)
	}
	if rec.OK {
		t.Fatal("regeneration unexpectedly fixed the deterministic decoy failure")
	}
	rec, err = edit.Generate(c.Question, "")
	if err != nil {
		t.Fatal(err)
	}
	if !rec.OK {
		t.Fatalf("clause-edit correction did not fix the failure: %+v", rec.Attempts)
	}
	if len(rec.Attempts) < 2 {
		t.Fatalf("expected the first attempt to fail, got %+v", rec.Attempts)
	}
}

// BenchmarkCorrectionLoopClauseEdit vs BenchmarkCorrectionLoopRegenerate
// measure the full generation loop on an exec-failing query under the two
// correction strategies. Beyond ns/op, each reports attempts/op (execution
// round-trips consumed) and repaired/op (whether the loop converged):
// clause editing stops after one targeted repair, where regeneration burns
// the whole attempt budget re-executing the same wrong query and never
// converges — so per successful repair the edit path is strictly cheaper.
func benchmarkCorrectionLoop(b *testing.B, e *Engine, question string) {
	b.Helper()
	attempts, repaired := 0, 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := e.Generate(question, "")
		if err != nil {
			b.Fatal(err)
		}
		attempts += len(rec.Attempts)
		if rec.OK {
			repaired++
		}
	}
	b.ReportMetric(float64(attempts)/float64(b.N), "attempts/op")
	b.ReportMetric(float64(repaired)/float64(b.N), "repaired/op")
}

func BenchmarkCorrectionLoopClauseEdit(b *testing.B) {
	_, edit, c := execFailingEngines(b)
	benchmarkCorrectionLoop(b, edit, c.Question)
}

func BenchmarkCorrectionLoopRegenerate(b *testing.B) {
	regen, _, c := execFailingEngines(b)
	benchmarkCorrectionLoop(b, regen, c.Question)
}

// BenchmarkRepairOperatorClauseEdit vs BenchmarkRepairOperatorRegenerate
// measure one correction call in isolation and report out_bytes/op — the
// volume of SQL the model must produce per repair. An edit emits only the
// wrong clauses; regeneration re-emits the entire statement. In a served
// deployment model output is the dominant cost of the correction loop.
func BenchmarkRepairOperatorClauseEdit(b *testing.B) {
	_, edit, c := execFailingEngines(b)
	ctx, plan := repairContext(b, edit, c.Question, "")
	editor := edit.model.(llm.ClauseEditor)
	wrong := c.Decoys[0].WrongSQL
	frags := mustDecompose(b, wrong)
	clauseFrags := make([]llm.ClauseFragment, len(frags))
	for i, f := range frags {
		clauseFrags[i] = llm.ClauseFragment{Unit: f.Unit, Clause: string(f.Clause), SQL: f.SQL, Distinct: f.Distinct}
	}
	ctx.Attempt = 1
	bytes := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		edits, err := editor.EditClauses(&ctx, plan, clauseFrags, "unknown column")
		if err != nil {
			b.Fatal(err)
		}
		for _, ed := range edits {
			bytes += len(ed.SQL)
		}
	}
	b.ReportMetric(float64(bytes)/float64(b.N), "out_bytes/op")
}

func BenchmarkRepairOperatorRegenerate(b *testing.B) {
	regen, _, c := execFailingEngines(b)
	ctx, plan := repairContext(b, regen, c.Question, "")
	wrong := c.Decoys[0].WrongSQL
	ctx.Attempt = 1
	bytes := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := regen.model.RepairSQL(&ctx, plan, wrong, "unknown column")
		if err != nil {
			b.Fatal(err)
		}
		bytes += len(out)
	}
	b.ReportMetric(float64(bytes)/float64(b.N), "out_bytes/op")
}
