package pipeline

import (
	"context"
	"errors"
	"testing"
	"time"

	"genedit/internal/generr"
)

func TestGenerateContextCanceled(t *testing.T) {
	engine, suite := testEngine(t, DefaultConfig())
	c := caseByID(t, suite, "sports_holdings-s-list-1")

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := engine.GenerateContext(ctx, c.Question, c.Evidence)
	if !errors.Is(err, generr.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want to unwrap to context.Canceled", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("canceled generation took %s, want prompt abort", d)
	}
}

func TestGenerateContextDeadline(t *testing.T) {
	engine, suite := testEngine(t, DefaultConfig())
	c := caseByID(t, suite, "sports_holdings-s-list-1")

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer cancel()
	_, err := engine.GenerateContext(ctx, c.Question, c.Evidence)
	if !errors.Is(err, generr.ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCanceled matching DeadlineExceeded", err)
	}
}

// TestGenerateContextMatchesGenerate proves the ctx/trace plumbing never
// changes what a completed generation produces.
func TestGenerateContextMatchesGenerate(t *testing.T) {
	engine, suite := testEngine(t, DefaultConfig())
	c := caseByID(t, suite, "sports_holdings-s-list-1")

	plain, err := engine.Generate(c.Question, c.Evidence)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	traced, err := engine.GenerateContext(WithTrace(ctx, func(*Trace) {}), c.Question, c.Evidence)
	if err != nil {
		t.Fatal(err)
	}
	if plain.FinalSQL != traced.FinalSQL || plain.OK != traced.OK {
		t.Fatalf("ctx/trace plumbing changed the result: %q vs %q", plain.FinalSQL, traced.FinalSQL)
	}
}

func TestTraceReportsOperatorTimings(t *testing.T) {
	engine, suite := testEngine(t, DefaultConfig())
	c := caseByID(t, suite, "sports_holdings-s-list-1")

	var got *Trace
	ctx := WithTrace(context.Background(), func(tr *Trace) { got = tr })
	if _, err := engine.GenerateContext(ctx, c.Question, c.Evidence); err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("trace hook not invoked")
	}
	wantOrder := []string{"reformulation", "intent_classification", "example_selection", "instruction_selection", "schema_linking", "planning", "generation_loop"}
	if len(got.Ops) != len(wantOrder) {
		t.Fatalf("ops = %v, want %d operators", got.Ops, len(wantOrder))
	}
	for i, op := range got.Ops {
		if op.Op != wantOrder[i] {
			t.Errorf("op %d = %q, want %q", i, op.Op, wantOrder[i])
		}
		if op.Duration < 0 {
			t.Errorf("op %q has negative duration", op.Op)
		}
	}
}

func TestTraceSkipsAblatedOperators(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableReformulation = true
	cfg.DisableInstructions = true
	cfg.DisablePlanning = true
	engine, suite := testEngine(t, cfg)
	c := caseByID(t, suite, "sports_holdings-s-list-1")

	var got *Trace
	ctx := WithTrace(context.Background(), func(tr *Trace) { got = tr })
	if _, err := engine.GenerateContext(ctx, c.Question, c.Evidence); err != nil {
		t.Fatal(err)
	}
	for _, op := range got.Ops {
		switch op.Op {
		case "reformulation", "instruction_selection", "planning":
			t.Errorf("ablated operator %q appears in trace", op.Op)
		}
	}
}

func TestRecordFailureClassification(t *testing.T) {
	okRec := &Record{OK: true}
	if okRec.Failure() != nil {
		t.Error("OK record must have nil Failure")
	}

	rec := &Record{
		FinalSQL: "SELEC broken",
		Attempts: []Attempt{{SQL: "SELEC broken", Kind: "syntax", Err: "syntax error near SELEC"}},
	}
	f := rec.Failure()
	if f == nil || !errors.Is(f, ErrSyntaxFailure) {
		t.Fatalf("failure = %v, want syntax classification", f)
	}
	if errors.Is(f, ErrExecFailure) {
		t.Error("syntax failure must not match ErrExecFailure")
	}

	rec = &Record{
		FinalSQL: "SELECT x FROM t",
		Attempts: []Attempt{{SQL: "SELECT x FROM t", Kind: "exec", Err: "unknown column x"}},
	}
	if f := rec.Failure(); f == nil || !errors.Is(f, ErrExecFailure) {
		t.Fatalf("failure = %v, want exec classification", f)
	}
}

func TestStatementCacheSizeConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StatementCacheSize = 64
	engine, _ := testEngine(t, cfg)
	if got := engine.exec.StatementCacheSize(); got != 64 {
		t.Fatalf("engine statement cache size = %d, want 64", got)
	}
}
