package pipeline

import (
	"strings"
	"testing"

	"genedit/internal/knowledge"
	"genedit/internal/simllm"
	"genedit/internal/task"
	"genedit/internal/workload"
)

func testEngine(t *testing.T, cfg Config) (*Engine, *workload.Suite) {
	t.Helper()
	suite := workload.NewSuite(1)
	kset, err := suite.BuildKnowledge("sports_holdings")
	if err != nil {
		t.Fatal(err)
	}
	model := simllm.New(simllm.GenEditProfile(), suite.Registry, 42)
	return New(model, kset, suite.Databases["sports_holdings"], cfg), suite
}

func caseByID(t *testing.T, suite *workload.Suite, id string) *task.Case {
	t.Helper()
	for _, c := range suite.Cases {
		if c.ID == id {
			return c
		}
	}
	t.Fatalf("case %s not found", id)
	return nil
}

func TestGenerateFillsRecord(t *testing.T) {
	engine, suite := testEngine(t, DefaultConfig())
	c := caseByID(t, suite, "sports_holdings-s-list-1")
	rec, err := engine.Generate(c.Question, c.Evidence)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(rec.Reformulated, "Show me") {
		t.Errorf("reformulated = %q, want canonical prefix", rec.Reformulated)
	}
	if len(rec.IntentIDs) == 0 || len(rec.IntentNames) == 0 {
		t.Error("no intents classified")
	}
	if len(rec.Context.Examples) == 0 {
		t.Error("no examples selected")
	}
	if len(rec.Context.Instructions) == 0 {
		t.Error("no instructions selected")
	}
	if rec.Context.LinkedElements == nil {
		t.Error("schema linking enabled but no linked elements recorded")
	}
	if len(rec.Plan.Steps) == 0 {
		t.Error("no plan produced")
	}
	if len(rec.Attempts) == 0 || rec.FinalSQL == "" {
		t.Error("no generation attempts recorded")
	}
	prompt := rec.Prompt()
	for _, want := range []string{"### Question", "### Schema"} {
		if !strings.Contains(prompt, want) {
			t.Errorf("prompt missing %s", want)
		}
	}
}

func TestAblationSwitchesShapeContext(t *testing.T) {
	suite := workload.NewSuite(1)
	c := caseByID(t, suite, "sports_holdings-s-top-1")

	cfg := DefaultConfig()
	cfg.DisableInstructions = true
	engine, _ := testEngine(t, cfg)
	rec, err := engine.Generate(c.Question, c.Evidence)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Context.Instructions) != 0 {
		t.Error("instructions present despite ablation")
	}

	cfg = DefaultConfig()
	cfg.DisableExamples = true
	engine, _ = testEngine(t, cfg)
	rec, err = engine.Generate(c.Question, c.Evidence)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Context.Examples) != 0 {
		t.Error("examples present in generation context despite ablation")
	}
	// The planner still consumed them: pseudo-SQL can appear.
	cfg = DefaultConfig()
	cfg.DisablePseudoSQL = true
	engine, _ = testEngine(t, cfg)
	rec, err = engine.Generate(c.Question, c.Evidence)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range rec.Plan.Steps {
		if s.Pseudo != "" || s.SQL != "" {
			t.Error("pseudo-SQL present despite ablation")
		}
	}

	cfg = DefaultConfig()
	cfg.DisableSchemaLinking = true
	engine, _ = testEngine(t, cfg)
	rec, err = engine.Generate(c.Question, c.Evidence)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Context.LinkedElements != nil {
		t.Error("linked elements present despite schema-linking ablation")
	}
	if !strings.Contains(rec.Context.SchemaDDL, "SPORTS_VIEWERSHIP") {
		t.Error("full schema should include every table when linking is off")
	}

	cfg = DefaultConfig()
	cfg.DisablePlanning = true
	engine, _ = testEngine(t, cfg)
	rec, err = engine.Generate(c.Question, c.Evidence)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Plan.Steps) != 0 {
		t.Error("plan present despite planning ablation")
	}
}

func TestFullSQLExamplesWhenDecompositionAblated(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableDecomposition = true
	engine, suite := testEngine(t, cfg)
	c := caseByID(t, suite, "sports_holdings-m-pivot")
	rec, err := engine.Generate(c.Question, c.Evidence)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Context.Examples) == 0 {
		t.Fatal("no examples selected")
	}
	for _, ex := range rec.Context.Examples {
		if ex.FullSQL == "" {
			t.Errorf("example %s is decomposed despite ablation", ex.ID)
		}
	}
}

func TestSelfCorrectionRetriesOnError(t *testing.T) {
	engine, suite := testEngine(t, DefaultConfig())
	// Scan the sports cases for one whose record shows multiple attempts,
	// proving the loop engages.
	multi := false
	for _, c := range suite.Cases {
		if c.DB != "sports_holdings" {
			continue
		}
		rec, err := engine.Generate(c.Question, c.Evidence)
		if err != nil {
			t.Fatal(err)
		}
		if len(rec.Attempts) > 1 {
			multi = true
			first := rec.Attempts[0]
			if first.Kind == "ok" {
				t.Errorf("case %s retried after a successful attempt", c.ID)
			}
		}
		if len(rec.Attempts) > engine.Config().MaxAttempts+1 {
			t.Errorf("case %s exceeded the attempt budget: %d", c.ID, len(rec.Attempts))
		}
	}
	if !multi {
		t.Error("no case engaged the self-correction loop; slip rate should produce some")
	}
}

func TestGenerationDeterministic(t *testing.T) {
	engine, suite := testEngine(t, DefaultConfig())
	c := caseByID(t, suite, "sports_holdings-c-qoq")
	a, err := engine.Generate(c.Question, c.Evidence)
	if err != nil {
		t.Fatal(err)
	}
	b, err := engine.Generate(c.Question, c.Evidence)
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalSQL != b.FinalSQL {
		t.Error("pipeline is not deterministic")
	}
}

func TestWithKnowledgeSwapsRetrieval(t *testing.T) {
	engine, suite := testEngine(t, DefaultConfig())
	c := caseByID(t, suite, "sports_holdings-s-our")

	empty := knowledge.NewSet()
	bare := engine.WithKnowledge(empty)
	rec, err := bare.Generate(c.Question, c.Evidence)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Context.Examples) != 0 || len(rec.Context.Instructions) != 0 {
		t.Error("empty knowledge set still produced retrieved items")
	}
	// The original engine is untouched.
	rec2, err := engine.Generate(c.Question, c.Evidence)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec2.Context.Instructions) == 0 {
		t.Error("original engine lost its knowledge set")
	}
}

func TestContextExpansionBoostsCoSelectedInstructions(t *testing.T) {
	// Build a knowledge set where an instruction matches the query weakly
	// but matches a selected example strongly; context expansion should
	// raise its rank.
	suite := workload.NewSuite(1)
	model := simllm.New(simllm.GenEditProfile(), suite.Registry, 42)
	kset := knowledge.NewSet()
	kset.AddIntent(&knowledge.Intent{ID: "i1", Name: "widget analytics"})
	if err := kset.InsertExample(&knowledge.Example{
		ID: "ex-1", IntentIDs: []string{"i1"},
		NL:  "Compute gizmo ratio as alpha divided by beta",
		SQL: "ALPHA / NULLIF(BETA, 0)", Clause: "projection",
	}, "t", ""); err != nil {
		t.Fatal(err)
	}
	// Weakly query-related instruction that shares the example's vocabulary.
	if err := kset.InsertInstruction(&knowledge.Instruction{
		ID: "ins-weak", IntentIDs: []string{"i1"},
		Text: "gizmo ratio uses alpha divided by beta with a NULLIF guard",
	}, "t", ""); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := kset.InsertInstruction(&knowledge.Instruction{
			IntentIDs: []string{"i1"},
			Text:      "widgets report guidance number " + strings.Repeat("x", i+1),
		}, "t", ""); err != nil {
			t.Fatal(err)
		}
	}

	cfg := DefaultConfig()
	cfg.TopInstructions = 3
	engine := New(model, kset, suite.Databases["sports_holdings"], cfg)
	recWith, err := engine.Generate("widgets gizmo analysis", "")
	if err != nil {
		t.Fatal(err)
	}

	cfg.DisableContextExpansion = true
	engineNo := New(model, kset, suite.Databases["sports_holdings"], cfg)
	recWithout, err := engineNo.Generate("widgets gizmo analysis", "")
	if err != nil {
		t.Fatal(err)
	}

	rank := func(rec *Record) int {
		for i, ins := range rec.Context.Instructions {
			if ins.ID == "ins-weak" {
				return i
			}
		}
		return len(rec.Context.Instructions)
	}
	if rank(recWith) > rank(recWithout) {
		t.Errorf("context expansion did not improve the co-selected instruction's rank: with=%d without=%d",
			rank(recWith), rank(recWithout))
	}
}

func TestDirectivesAppearInContext(t *testing.T) {
	engine, suite := testEngine(t, DefaultConfig())
	kset := engine.KnowledgeSet().Clone()
	kset.AddDirective("prefer quarterly pivot examples", "sme", "fb-1")
	engine2 := engine.WithKnowledge(kset)
	c := caseByID(t, suite, "sports_holdings-m-pivot")
	rec, err := engine2.Generate(c.Question, c.Evidence)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Context.Directives) != 1 {
		t.Errorf("directives = %v, want the staged directive", rec.Context.Directives)
	}
}
