// Package pipeline implements GenEdit's SQL generation module: the
// compounding operator pipeline of Fig. 1 (inference operators 1-9) over a
// company-specific knowledge set, with the ablation switches of Table 2.
package pipeline

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"genedit/internal/decompose"
	"genedit/internal/embed"
	"genedit/internal/generr"
	"genedit/internal/knowledge"
	"genedit/internal/llm"
	"genedit/internal/schema"
	"genedit/internal/sqldb"
	"genedit/internal/sqlexec"
	"genedit/internal/sqlparse"
)

// Config controls pipeline behaviour. The Disable* switches implement the
// ablations of Table 2 plus the extra design-choice ablations DESIGN.md
// calls out.
type Config struct {
	// MaxAttempts is k, the regeneration budget (§3: "up to k times",
	// k=3 in Fig. 1).
	MaxAttempts int
	// TopExamples caps selected examples.
	TopExamples int
	// TopInstructions caps selected instructions.
	TopInstructions int
	// ExpansionWeight blends example-context similarity into instruction
	// re-ranking (context expansion, §3.1.1).
	ExpansionWeight float64
	// SemanticCheck enables the model-based empty-result regeneration.
	SemanticCheck bool
	// StatementCacheSize bounds the executor's parsed-statement LRU;
	// 0 means sqlexec.DefaultStatementCacheSize. Serving deployments with
	// a larger hot set raise it through genedit.WithStatementCacheSize.
	StatementCacheSize int
	// DisableBatchExec turns off the executor's columnar batch engine, so
	// every statement runs through the compiled row path. The batch engine
	// is bit-identical by contract; the switch exists for debugging and for
	// apples-to-apples performance comparisons (genedit.WithBatchExec).
	DisableBatchExec bool
	// ClauseEditCorrection switches the self-correction operator (8-9) from
	// full regeneration to clause-level editing: the failing SQL is
	// decomposed into fragments and the model proposes targeted clause
	// edits (llm.ClauseEditor), falling back to RepairSQL when the model
	// lacks the capability, the SQL does not parse (syntax failures), or no
	// edit is proposed. Off by default: the edit path changes the SQL the
	// correction loop produces, so it is opt-in to keep the baseline EX
	// tables bit-identical.
	ClauseEditCorrection bool

	// ExampleFanout / InstructionFanout are the retrieval fan-outs of the
	// example and instruction selectors: how many candidates the global
	// similarity search pulls from the index before intent filtering and
	// re-ranking. <= 0 means the defaults (DefaultExampleFanout /
	// DefaultInstructionFanout), which reproduce the paper configuration.
	ExampleFanout     int
	InstructionFanout int
	// DisableANNRetrieval forces every retrieval through the plain full
	// scan. The ANN layer is exact by construction (top-k order-identical
	// to the brute scan — see internal/embed), so like DisableBatchExec
	// this switch exists for debugging and apples-to-apples comparisons.
	DisableANNRetrieval bool
	// ANNMinSize / ANNProbes tune the retrieval index's partitioning
	// threshold and unconditional probe count; 0 means the embed defaults.
	ANNMinSize int
	ANNProbes  int

	// Table 2 ablations.
	DisableSchemaLinking bool
	DisableInstructions  bool
	DisableExamples      bool
	DisablePseudoSQL     bool
	DisableDecomposition bool

	// Additional design-choice ablations.
	DisableContextExpansion bool
	DisablePlanning         bool
	DisableSelfCorrection   bool
	DisableReformulation    bool
}

// Default retrieval fan-outs (the historical hard-coded values).
const (
	DefaultExampleFanout     = 24
	DefaultInstructionFanout = 16
)

// DefaultConfig returns the production configuration.
func DefaultConfig() Config {
	return Config{
		MaxAttempts:       3,
		TopExamples:       12,
		TopInstructions:   6,
		ExpansionWeight:   0.45,
		SemanticCheck:     true,
		ExampleFanout:     DefaultExampleFanout,
		InstructionFanout: DefaultInstructionFanout,
	}
}

// Attempt records one generation attempt and its execution feedback.
type Attempt struct {
	SQL string
	// Kind classifies the outcome: "ok", "empty", "syntax", "exec".
	Kind string
	// Err is the execution error message, if any.
	Err string
	// Rows is the result cardinality on success.
	Rows int
}

// Record is the full trace of one generation: the feedback module's input
// and the source for rendering the Fig. 2 prompt.
type Record struct {
	Question     string
	Reformulated string
	Evidence     string
	IntentIDs    []string
	IntentNames  []string
	Context      llm.Context
	Plan         llm.Plan
	Attempts     []Attempt
	FinalSQL     string
	// OK reports whether the final SQL executed without error.
	OK bool
	// Result is the final execution result when OK.
	Result *sqlexec.Result
}

// Prompt renders the generation prompt for this record (Fig. 2 structure).
func (r *Record) Prompt() string {
	ctx := r.Context
	return llm.RenderPrompt(&ctx, &r.Plan)
}

// Engine is the GenEdit generation pipeline bound to one database and one
// knowledge set.
//
// Concurrency contract: an Engine is safe for concurrent Generate /
// GenerateContext calls. All per-engine state — the knowledge set, schema
// profile, retrieval indices and precomputed vectors — is read-only after
// construction; the executor synchronizes its statement cache internally;
// and the model is required to be concurrency-safe (the simulated model is
// a pure function of its seed). Mutating operations (WithKnowledge) return
// a new Engine rather than changing a shared one, so a served engine is
// immutable for its lifetime.
type Engine struct {
	model llm.Model
	kset  *knowledge.Set
	db    *sqldb.Database
	sch   *schema.Schema
	exec  *sqlexec.Executor
	cfg   Config

	exIndex  *embed.Index
	insIndex *embed.Index
	// intentOpts is the classification option list, derived from the
	// knowledge set once at index-build time (the set is immutable while
	// served, and Intents() deep-copies on every call).
	intentOpts []llm.IntentOption
	// fullExs are the deduplicated full-query example candidates (the
	// "w/o Decomposition" ablation path), with their ranking vectors
	// precomputed so per-Generate scoring is a dot product per candidate.
	fullExs []fullExCand
	// Vectors precomputed at index-build time so per-Generate re-ranking
	// does not re-embed unchanged knowledge items. Read-only after
	// buildIndices (WithKnowledge rebuilds them with the indices).
	dirVecs     []embed.Vector          // directive texts
	insTextVecs map[string]embed.Vector // instruction Text alone (directive boost)
	srcQVecs    map[string]embed.Vector // example SourceQuestion texts
	exPairVecs  map[string]embed.Vector // example NL+SQL (context expansion)
}

// New builds an engine. The knowledge set is indexed for retrieval once.
func New(model llm.Model, kset *knowledge.Set, db *sqldb.Database, cfg Config) *Engine {
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.ExampleFanout <= 0 {
		cfg.ExampleFanout = DefaultExampleFanout
	}
	if cfg.InstructionFanout <= 0 {
		cfg.InstructionFanout = DefaultInstructionFanout
	}
	exec := sqlexec.New(db)
	if cfg.StatementCacheSize > 0 {
		exec.SetStatementCacheSize(cfg.StatementCacheSize)
	}
	if cfg.DisableBatchExec {
		exec.SetBatchExec(false)
	}
	e := &Engine{
		model: model,
		kset:  kset,
		db:    db,
		sch:   schema.FromDatabase(db, schema.DefaultTopValues),
		exec:  exec,
		cfg:   cfg,
	}
	e.buildIndices()
	return e
}

func (e *Engine) buildIndices() {
	e.exIndex = embed.NewIndex()
	e.srcQVecs = make(map[string]embed.Vector)
	e.exPairVecs = make(map[string]embed.Vector)
	for _, ex := range e.kset.Examples() {
		e.exIndex.Add(ex.ID, ex.Text())
		if ex.SourceQuestion != "" {
			if _, ok := e.srcQVecs[ex.SourceQuestion]; !ok {
				e.srcQVecs[ex.SourceQuestion] = embed.Text(ex.SourceQuestion)
			}
		}
		e.exPairVecs[ex.ID] = embed.Text(ex.NL + " " + ex.SQL)
	}
	e.insIndex = embed.NewIndex()
	e.insTextVecs = make(map[string]embed.Vector)
	for _, ins := range e.kset.Instructions() {
		e.insIndex.Add(ins.ID, ins.RetrievalText())
		e.insTextVecs[ins.ID] = embed.Text(ins.Text)
	}
	directives := e.kset.Directives()
	e.dirVecs = make([]embed.Vector, len(directives))
	for i, d := range directives {
		e.dirVecs[i] = embed.Text(d)
	}
	e.intentOpts = nil
	for _, it := range e.kset.Intents() {
		e.intentOpts = append(e.intentOpts, llm.IntentOption{ID: it.ID, Name: it.Name, Description: it.Description})
	}
	e.fullExs = nil
	seenSQL := make(map[string]bool)
	for _, ex := range e.kset.Examples() {
		if ex.SourceSQL == "" || seenSQL[ex.SourceSQL] {
			continue
		}
		seenSQL[ex.SourceSQL] = true
		text := ex.SourceQuestion
		if text == "" {
			text = ex.SourceSQL
		}
		e.fullExs = append(e.fullExs, fullExCand{
			id:  fmt.Sprintf("full-%03d", len(e.fullExs)+1),
			nl:  ex.SourceQuestion,
			sql: ex.SourceSQL,
			vec: embed.Text(text),
		})
	}

	// Seal the retrieval indices: partition them for sub-linear search while
	// the engine is still private to this goroutine. Engines are immutable
	// once served, so approval hot-swaps re-enter here via WithKnowledge and
	// always publish a freshly partitioned — never stale — index.
	if !e.cfg.DisableANNRetrieval {
		annCfg := embed.ANNConfig{MinSize: e.cfg.ANNMinSize, Probes: e.cfg.ANNProbes}
		e.exIndex.EnableANN(annCfg)
		e.insIndex.EnableANN(annCfg)
	}
	e.exIndex.Build()
	e.insIndex.Build()
}

// fullExCand is one precomputed full-query example candidate.
type fullExCand struct {
	id  string
	nl  string
	sql string
	vec embed.Vector
}

// KnowledgeSet returns the engine's live knowledge set.
func (e *Engine) KnowledgeSet() *knowledge.Set { return e.kset }

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// RetrievalStats aggregates the two retrieval indices' search counters.
type RetrievalStats struct {
	Examples     embed.SearchStats
	Instructions embed.SearchStats
}

// RetrievalStats snapshots the engine's retrieval counters. Safe to call
// concurrently with Generate.
func (e *Engine) RetrievalStats() RetrievalStats {
	return RetrievalStats{
		Examples:     e.exIndex.Stats(),
		Instructions: e.insIndex.Stats(),
	}
}

// Database returns the bound database.
func (e *Engine) Database() *sqldb.Database { return e.db }

// Schema returns the profiled schema.
func (e *Engine) Schema() *schema.Schema { return e.sch }

// WithKnowledge returns a new engine over a different knowledge set (the
// staging environment of §4.2.1), sharing model, database and config.
func (e *Engine) WithKnowledge(kset *knowledge.Set) *Engine {
	out := &Engine{
		model: e.model, kset: kset, db: e.db, sch: e.sch,
		exec: e.exec, cfg: e.cfg,
	}
	out.buildIndices()
	return out
}

// Generate runs the full inference pipeline for one question with no
// deadline. The evidence string is the benchmark-provided external knowledge
// (may be empty).
func (e *Engine) Generate(question, evidence string) (*Record, error) {
	return e.GenerateContext(context.Background(), question, evidence)
}

// GenerateContext runs the full inference pipeline for one question.
// Cancellation is checked between operators and between self-correction
// attempts, so a canceled or expired ctx aborts promptly mid-pipeline with
// an error matching generr.ErrCanceled (and the underlying ctx.Err()). A
// trace hook attached via WithTrace receives per-operator timings when the
// call returns. The ctx carries deadline and trace only — it never changes
// what SQL a completed call produces.
func (e *Engine) GenerateContext(ctx context.Context, question, evidence string) (*Record, error) {
	tr := newTraceRecorder(ctx, question, e.db.Name)
	defer tr.finish()

	rec := &Record{Question: question, Evidence: evidence}
	if err := generr.FromContext(ctx); err != nil {
		return nil, err
	}

	// Operator 1: query reformulation.
	reformulated := question
	if !e.cfg.DisableReformulation {
		done := tr.step("reformulation")
		var err error
		reformulated, err = e.model.Reformulate(question)
		done()
		if err != nil {
			return nil, fmt.Errorf("reformulation: %w", err)
		}
	}
	rec.Reformulated = reformulated
	if err := generr.FromContext(ctx); err != nil {
		return nil, err
	}

	// Operator 2: intent classification.
	done := tr.step("intent_classification")
	intentIDs, err := e.model.ClassifyIntents(reformulated, e.intentOpts)
	done()
	if err != nil {
		return nil, fmt.Errorf("intent classification: %w", err)
	}
	rec.IntentIDs = intentIDs
	for _, id := range intentIDs {
		if it := e.kset.Intent(id); it != nil {
			rec.IntentNames = append(rec.IntentNames, it.Name)
		}
	}

	promptCtx := llm.Context{
		Question:   reformulated,
		Original:   question,
		DB:         e.db.Name,
		Intents:    rec.IntentNames,
		Evidence:   evidence,
		Directives: e.kset.Directives(),
	}

	// The reformulated query is embedded exactly once; the same vector
	// drives example retrieval, example re-ranking and instruction
	// re-ranking (operators 3-4), which previously each re-embedded it.
	qv := embed.Text(reformulated)

	// Operator 3: example selection (intent retrieval + query re-ranking).
	// When examples are ablated (Table 2 "w/o Examples"), selection still
	// runs for the internal operators — the planner derives its pseudo-SQL
	// from selected examples (§3.3.4 notes examples "are what we use to add
	// pseudo-SQL to the CoT plan") — but the examples are withheld from the
	// generation prompt.
	done = tr.step("example_selection")
	promptCtx.Examples = e.selectExamples(qv, intentIDs)
	done()

	// Operator 4: instruction selection (re-ranked with example context —
	// the compounding/context-expansion step).
	if !e.cfg.DisableInstructions {
		done = tr.step("instruction_selection")
		promptCtx.Instructions = e.selectInstructions(qv, intentIDs, promptCtx.Examples)
		done()
	}
	if err := generr.FromContext(ctx); err != nil {
		return nil, err
	}

	// Operator 5: schema linking with re-rank filtering.
	if e.cfg.DisableSchemaLinking {
		promptCtx.SchemaDDL = e.sch.DDL()
		promptCtx.LinkedElements = nil
	} else {
		done = tr.step("schema_linking")
		els, err := e.model.LinkSchema(reformulated, e.sch, &promptCtx)
		done()
		if err != nil {
			return nil, fmt.Errorf("schema linking: %w", err)
		}
		linked := make([]schema.Element, len(els))
		copy(linked, els)
		promptCtx.LinkedElements = linked
		sub := e.sch.Subset(linked)
		if sub.ColumnCount() == 0 {
			promptCtx.SchemaDDL = e.sch.DDL()
		} else {
			promptCtx.SchemaDDL = sub.DDL()
		}
	}
	if err := generr.FromContext(ctx); err != nil {
		return nil, err
	}

	// Operator 6: CoT plan generation with pseudo-SQL.
	var plan llm.Plan
	if !e.cfg.DisablePlanning {
		done = tr.step("planning")
		plan, err = e.model.Plan(&promptCtx)
		done()
		if err != nil {
			return nil, fmt.Errorf("planning: %w", err)
		}
		if e.cfg.DisablePseudoSQL {
			for i := range plan.Steps {
				plan.Steps[i].Pseudo = ""
				plan.Steps[i].SQL = ""
				plan.Steps[i].AnchorSQL = ""
			}
		}
	}
	rec.Plan = plan

	// Withhold ablated examples from the generation prompt (see operator 3
	// above: the planner has already consumed them).
	if e.cfg.DisableExamples {
		promptCtx.Examples = nil
	}
	if err := generr.FromContext(ctx); err != nil {
		return nil, err
	}

	// Operators 7-9: generation with execution feedback and regeneration.
	done = tr.step("generation_loop")
	err = e.generateWithCorrection(ctx, rec, &promptCtx, plan)
	done()
	if err != nil {
		return nil, err
	}
	rec.Context = promptCtx
	return rec, nil
}

// generateWithCorrection runs the generate → execute → repair loop. Genctx
// cancellation is checked before each execution and each repair call; on
// cancellation the returned error matches generr.ErrCanceled (and
// GenerateContext discards the partial record — a canceled call yields no
// trace).
func (e *Engine) generateWithCorrection(genctx context.Context, rec *Record, ctx *llm.Context, plan llm.Plan) error {
	type candidate struct {
		sql  string
		res  *sqlexec.Result
		kind string
	}
	var best *candidate
	better := func(a, b *candidate) bool { // is a better than b
		rank := func(c *candidate) int {
			switch c.kind {
			case "ok":
				return 2
			case "empty":
				return 1
			default:
				return 0
			}
		}
		return b == nil || rank(a) > rank(b)
	}

	sql, err := e.model.GenerateSQL(ctx, plan)
	if err != nil {
		rec.Attempts = append(rec.Attempts, Attempt{Kind: "exec", Err: err.Error()})
		return nil
	}
	emptyRetried := false
	for attempt := 0; ; attempt++ {
		if err := generr.FromContext(genctx); err != nil {
			return err
		}
		att := Attempt{SQL: sql}
		res, execErr := e.exec.Query(sql)
		switch {
		case execErr == nil && (len(res.Rows) > 0 || !e.cfg.SemanticCheck):
			att.Kind = "ok"
			att.Rows = len(res.Rows)
		case execErr == nil:
			att.Kind = "empty"
		case isSyntaxError(execErr):
			att.Kind = "syntax"
			att.Err = execErr.Error()
		default:
			att.Kind = "exec"
			att.Err = execErr.Error()
		}
		rec.Attempts = append(rec.Attempts, att)

		cand := &candidate{sql: sql, res: res, kind: att.Kind}
		if execErr != nil {
			cand.res = nil
		}
		if better(cand, best) {
			best = cand
		}

		if att.Kind == "ok" {
			break
		}
		if att.Kind == "empty" {
			// The model-based semantic check flags empty results once; an
			// empty result may still be the right answer.
			if emptyRetried {
				break
			}
			emptyRetried = true
		}
		if e.cfg.DisableSelfCorrection || attempt+1 >= e.cfg.MaxAttempts {
			break
		}
		feedback := att.Err
		if att.Kind == "empty" {
			feedback = "semantic check: the query executed but returned no rows; verify filters and joins"
		}
		ctx.Attempt = attempt + 1
		ctx.PriorSQL = sql
		ctx.PriorError = feedback
		if err := generr.FromContext(genctx); err != nil {
			return err
		}
		repaired := ""
		if e.cfg.ClauseEditCorrection && att.Kind != "syntax" {
			// Targeted clause-level correction: cheaper than a full
			// regeneration and bounded to the clauses that are wrong.
			// Syntax failures skip it — unparsable SQL has no fragments.
			repaired = e.clauseEditRepair(ctx, plan, sql, feedback)
		}
		if repaired == "" {
			var rerr error
			repaired, rerr = e.model.RepairSQL(ctx, plan, sql, feedback)
			if rerr != nil || repaired == "" {
				break
			}
		}
		sql = repaired
	}

	if best != nil {
		rec.FinalSQL = best.sql
		rec.OK = best.kind == "ok" || best.kind == "empty"
		rec.Result = best.res
	}
	return nil
}

// clauseEditRepair implements the clause-level correction path: decompose
// the failing SQL, ask the model (if it is a ClauseEditor) for targeted
// clause edits, apply them to the fragments and recompose. Returns "" when
// the path does not apply — caller falls back to full regeneration.
func (e *Engine) clauseEditRepair(ctx *llm.Context, plan llm.Plan, sql, execError string) string {
	editor, ok := e.model.(llm.ClauseEditor)
	if !ok {
		return ""
	}
	frags, err := decompose.DecomposeSQL(sql)
	if err != nil || len(frags) == 0 {
		return ""
	}
	clauseFrags := make([]llm.ClauseFragment, len(frags))
	for i, f := range frags {
		clauseFrags[i] = llm.ClauseFragment{
			Unit: f.Unit, Clause: string(f.Clause), SQL: f.SQL, Distinct: f.Distinct,
		}
	}
	edits, err := editor.EditClauses(ctx, plan, clauseFrags, execError)
	if err != nil || len(edits) == 0 {
		return ""
	}
	out, err := decompose.ComposeSQL(applyClauseEdits(frags, edits))
	if err != nil {
		return ""
	}
	return out
}

// applyClauseEdits replaces, deletes or inserts fragments per the edits.
// Inserted clauses for an existing unit land next to that unit's fragments,
// preserving CTE first-occurrence order on recomposition.
func applyClauseEdits(frags []decompose.Fragment, edits []llm.ClauseEdit) []decompose.Fragment {
	out := append([]decompose.Fragment(nil), frags...)
	for _, ed := range edits {
		idx := -1
		for i, f := range out {
			if f.Unit == ed.Unit && string(f.Clause) == ed.Clause {
				idx = i
				break
			}
		}
		switch {
		case ed.Delete:
			if idx >= 0 {
				out = append(out[:idx], out[idx+1:]...)
			}
		case idx >= 0:
			out[idx].SQL = ed.SQL
			out[idx].Distinct = ed.Distinct
		default:
			frag := decompose.Fragment{
				Unit: ed.Unit, Clause: decompose.Clause(ed.Clause),
				SQL: ed.SQL, Distinct: ed.Distinct,
			}
			// Insert after the unit's last existing fragment so a brand-new
			// clause never reorders the unit sequence.
			at := len(out)
			for i := len(out) - 1; i >= 0; i-- {
				if out[i].Unit == ed.Unit {
					at = i + 1
					break
				}
			}
			out = append(out, decompose.Fragment{})
			copy(out[at+1:], out[at:])
			out[at] = frag
		}
	}
	return out
}

func isSyntaxError(err error) bool {
	_, ok := err.(*sqlparse.SyntaxError)
	if ok {
		return true
	}
	return strings.Contains(err.Error(), "syntax error")
}

// selectExamples implements operator 3. Candidates come from the classified
// intents plus a global query-similarity search; all candidates are
// re-ranked by cosine similarity with the reformulated query (whose
// precomputed embedding qv is threaded in by Generate). When decomposition
// is ablated the knowledge set's fragments are regrouped into traditional
// full-query examples.
func (e *Engine) selectExamples(qv embed.Vector, intentIDs []string) []llm.RetrievedExample {
	if e.cfg.DisableDecomposition {
		return e.selectFullExamples(qv)
	}
	seen := make(map[string]bool)
	var candidates []*knowledge.Example
	for _, id := range intentIDs {
		for _, ex := range e.kset.ExamplesByIntent(id) {
			if !seen[ex.ID] {
				seen[ex.ID] = true
				candidates = append(candidates, ex)
			}
		}
	}
	for _, hit := range e.exIndex.SearchVector(qv, e.cfg.ExampleFanout) {
		if ex := e.kset.Example(hit.ID); ex != nil && !seen[ex.ID] {
			seen[ex.ID] = true
			candidates = append(candidates, ex)
		}
	}
	scored := make([]llm.RetrievedExample, 0, len(candidates))
	for _, ex := range candidates {
		// A fragment is relevant when its own text matches the query or
		// when the question of the query it was decomposed from does —
		// sub-statements of similar historical questions are the reusable
		// unit §3.2 is built around.
		exVec := e.exIndex.Vector(ex.ID)
		if exVec == nil {
			exVec = embed.Text(ex.Text())
		}
		score := embed.Cosine(qv, exVec)
		if ex.SourceQuestion != "" {
			sv, ok := e.srcQVecs[ex.SourceQuestion]
			if !ok {
				sv = embed.Text(ex.SourceQuestion)
			}
			if s := 0.92 * embed.Cosine(qv, sv); s > score {
				score = s
			}
		}
		scored = append(scored, llm.RetrievedExample{
			ID: ex.ID, NL: ex.NL, Pseudo: ex.Pseudo, SQL: ex.SQL,
			Clause: ex.Clause, Terms: ex.Terms,
			Score: score,
		})
	}
	sortHits := func(s []llm.RetrievedExample) {
		sort.SliceStable(s, func(i, j int) bool {
			if s[i].Score != s[j].Score {
				return s[i].Score > s[j].Score
			}
			return s[i].ID < s[j].ID
		})
	}
	sortHits(scored)
	if len(scored) > e.cfg.TopExamples {
		scored = scored[:e.cfg.TopExamples]
	}
	return scored
}

// selectFullExamples regroups decomposed fragments into whole-query
// examples (the traditional representation, used by the "w/o Decomposition"
// ablation).
func (e *Engine) selectFullExamples(qv embed.Vector) []llm.RetrievedExample {
	scored := make([]llm.RetrievedExample, 0, len(e.fullExs))
	for _, fe := range e.fullExs {
		scored = append(scored, llm.RetrievedExample{
			ID:      fe.id,
			NL:      fe.nl,
			FullSQL: fe.sql,
			Score:   embed.Cosine(qv, fe.vec),
		})
	}
	sort.SliceStable(scored, func(i, j int) bool {
		if scored[i].Score != scored[j].Score {
			return scored[i].Score > scored[j].Score
		}
		return scored[i].ID < scored[j].ID
	})
	if len(scored) > e.cfg.TopExamples {
		scored = scored[:e.cfg.TopExamples]
	}
	return scored
}

// selectInstructions implements operator 4: candidates from intents plus
// global search, re-ranked by similarity to the query AND to the already-
// selected examples — the context expansion the paper's compounding
// operators are named for. qv is the precomputed embedding of the
// reformulated query.
func (e *Engine) selectInstructions(qv embed.Vector, intentIDs []string, examples []llm.RetrievedExample) []llm.RetrievedInstruction {
	seen := make(map[string]bool)
	var candidates []*knowledge.Instruction
	for _, id := range intentIDs {
		for _, ins := range e.kset.InstructionsByIntent(id) {
			if !seen[ins.ID] {
				seen[ins.ID] = true
				candidates = append(candidates, ins)
			}
		}
	}
	for _, hit := range e.insIndex.SearchVector(qv, e.cfg.InstructionFanout) {
		if ins := e.kset.Instruction(hit.ID); ins != nil && !seen[ins.ID] {
			seen[ins.ID] = true
			candidates = append(candidates, ins)
		}
	}
	exVecs := make([]embed.Vector, len(examples))
	for i, ex := range examples {
		v, ok := e.exPairVecs[ex.ID]
		if !ok { // regrouped full-query examples are not knowledge items
			v = embed.Text(ex.NL + " " + ex.SQL)
		}
		exVecs[i] = v
	}
	directiveBoost := e.directiveBoost()

	var scored []llm.RetrievedInstruction
	for _, ins := range candidates {
		insVec := e.insIndex.Vector(ins.ID)
		if insVec == nil {
			insVec = embed.Text(ins.Text + " " + ins.SQLHint)
		}
		score := embed.Cosine(qv, insVec)
		if !e.cfg.DisableContextExpansion && len(exVecs) > 0 {
			maxEx := 0.0
			for _, ev := range exVecs {
				if c := embed.Cosine(ev, insVec); c > maxEx {
					maxEx = c
				}
			}
			score += e.cfg.ExpansionWeight * maxEx
		}
		score += directiveBoost(ins)
		scored = append(scored, llm.RetrievedInstruction{
			ID: ins.ID, Text: ins.Text, SQLHint: ins.SQLHint, Terms: ins.Terms,
			Score: score,
		})
	}
	sort.SliceStable(scored, func(i, j int) bool {
		if scored[i].Score != scored[j].Score {
			return scored[i].Score > scored[j].Score
		}
		return scored[i].ID < scored[j].ID
	})
	if len(scored) > e.cfg.TopInstructions {
		scored = scored[:e.cfg.TopInstructions]
	}
	return scored
}

// directiveBoost applies knowledge-set retrieval directives: instructions
// matching a directive's vocabulary get a small ranking boost. Directive
// and instruction-text vectors come from the caches buildIndices filled.
func (e *Engine) directiveBoost() func(*knowledge.Instruction) float64 {
	if len(e.dirVecs) == 0 {
		return func(*knowledge.Instruction) float64 { return 0 }
	}
	return func(ins *knowledge.Instruction) float64 {
		iv, ok := e.insTextVecs[ins.ID]
		if !ok {
			iv = embed.Text(ins.Text)
		}
		best := 0.0
		for _, dv := range e.dirVecs {
			if c := embed.Cosine(dv, iv); c > best {
				best = c
			}
		}
		return 0.1 * best
	}
}
