package pipeline

import (
	"context"
	"time"
)

// OpTiming records the wall-clock duration of one inference operator within
// a single Generate call.
type OpTiming struct {
	// Op names the operator: "reformulation", "intent_classification",
	// "example_selection", "instruction_selection", "schema_linking",
	// "planning", "generation_loop".
	Op       string
	Duration time.Duration
}

// Trace is the per-request timing report delivered to a TraceFunc after a
// Generate call finishes (successfully or not).
type Trace struct {
	Question string
	Database string
	// Ops lists operator timings in execution order; operators skipped by
	// ablation switches or cut short by cancellation are absent.
	Ops []OpTiming
	// Total is the wall-clock duration of the whole Generate call.
	Total time.Duration
}

// TraceFunc observes one request's trace. Hooks must be safe for concurrent
// use when the engine serves concurrent requests; they run synchronously at
// the end of the Generate call that produced the trace.
type TraceFunc func(*Trace)

type traceKey struct{}

// WithTrace returns a context that carries fn as the per-request trace hook.
// Engine.GenerateContext invokes the hook exactly once per call with the
// operator timings. Attaching a hook never alters generation results.
func WithTrace(ctx context.Context, fn TraceFunc) context.Context {
	if fn == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, fn)
}

func traceFrom(ctx context.Context) TraceFunc {
	fn, _ := ctx.Value(traceKey{}).(TraceFunc)
	return fn
}

// HasTrace reports whether ctx already carries a trace hook. The service
// layer uses it to let a per-request hook take precedence over the
// service-level one.
func HasTrace(ctx context.Context) bool { return traceFrom(ctx) != nil }

// traceRecorder accumulates operator timings for one Generate call. A nil
// recorder (no hook on the context) is valid and makes every method a no-op,
// keeping the un-traced hot path allocation-free.
type traceRecorder struct {
	fn    TraceFunc
	trace Trace
	start time.Time
	done  bool
}

func newTraceRecorder(ctx context.Context, question, database string) *traceRecorder {
	fn := traceFrom(ctx)
	if fn == nil {
		return nil
	}
	return &traceRecorder{
		fn:    fn,
		trace: Trace{Question: question, Database: database},
		start: time.Now(),
	}
}

// step starts timing one operator and returns the function that records it.
func (t *traceRecorder) step(op string) func() {
	if t == nil {
		return func() {}
	}
	begin := time.Now()
	return func() {
		t.trace.Ops = append(t.trace.Ops, OpTiming{Op: op, Duration: time.Since(begin)})
	}
}

// finish delivers the trace to the hook; safe to call more than once (the
// hook fires only on the first call) and on a nil recorder.
func (t *traceRecorder) finish() {
	if t == nil || t.done {
		return
	}
	t.done = true
	t.trace.Total = time.Since(t.start)
	t.fn(&t.trace)
}
