package pipeline

import (
	"errors"
	"fmt"
)

// Sentinels classifying why a generation's final SQL failed. They are never
// returned directly; GenerationError.Is matches them, so callers branch with
// errors.Is(rec.Failure(), ErrSyntaxFailure) without inspecting Kind.
var (
	// ErrSyntaxFailure marks a final SQL that failed to parse.
	ErrSyntaxFailure = errors.New("genedit: generated SQL failed to parse")
	// ErrExecFailure marks a final SQL that parsed but failed semantic
	// execution (unknown column, type error, ...).
	ErrExecFailure = errors.New("genedit: generated SQL failed to execute")
)

// GenerationError reports that the pipeline ran to completion but its best
// candidate SQL still failed, distinguishing parse failures from semantic
// execution failures — the same split the self-correction operator branches
// on. It is carried on the Record (see Record.Failure), not returned from
// Generate: a failed generation is still a complete trace.
type GenerationError struct {
	// Kind is "syntax" or "exec", matching Attempt.Kind.
	Kind string
	// SQL is the failing statement ("" when the model produced none).
	SQL string
	// Msg is the parser or executor error message.
	Msg string
}

func (e *GenerationError) Error() string {
	return fmt.Sprintf("generation failed (%s): %s", e.Kind, e.Msg)
}

// Is reports whether target is the sentinel matching this failure's kind.
func (e *GenerationError) Is(target error) bool {
	switch target {
	case ErrSyntaxFailure:
		return e.Kind == "syntax"
	case ErrExecFailure:
		return e.Kind == "exec"
	}
	return false
}

// Failure classifies an unsuccessful generation. It returns nil when the
// final SQL executed (Record.OK), and a *GenerationError describing the best
// attempt's failure otherwise.
func (r *Record) Failure() *GenerationError {
	if r.OK {
		return nil
	}
	// The final attempt for FinalSQL carries the classification; when the
	// model produced no SQL at all the single recorded attempt does.
	for i := len(r.Attempts) - 1; i >= 0; i-- {
		a := r.Attempts[i]
		if a.SQL == r.FinalSQL {
			return &GenerationError{Kind: a.Kind, SQL: a.SQL, Msg: a.Err}
		}
	}
	return &GenerationError{Kind: "exec", SQL: r.FinalSQL, Msg: "no SQL generated"}
}
