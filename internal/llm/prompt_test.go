package llm

import (
	"strings"
	"testing"
)

func sampleContext() *Context {
	return &Context{
		Question: "Show me the 5 sports organisations with the best and worst QoQFP in Canada for Q2 2023",
		Original: "the 5 sports organisations with the best and worst QoQFP in Canada for Q2 2023",
		DB:       "sports_holdings",
		Intents:  []string{"financial performance"},
		Examples: []RetrievedExample{
			{ID: "ex-1", NL: "RPV is revenue over views", Pseudo: "... REVENUE / NULLIF(VIEWS, 0) ...", SQL: "REVENUE / NULLIF(VIEWS, 0)", Clause: "projection"},
			{ID: "ex-2", NL: "Historical full query", FullSQL: "SELECT 1"},
		},
		Instructions: []RetrievedInstruction{
			{ID: "ins-1", Text: "Apply a -1 multiplier when calculating the change in performance metrics", SQLHint: "-1 * (a - b)"},
		},
		SchemaDDL:  "CREATE TABLE SPORTS_FINANCIALS (ORG_NAME TEXT);\n",
		Evidence:   "QoQFP is quarter-over-quarter financial performance",
		Directives: []string{"prefer quarterly examples"},
	}
}

func samplePlan() *Plan {
	return &Plan{Steps: []PlanStep{
		{Description: "Begin by looking at the financial data from the SPORTS_FINANCIALS table.",
			Pseudo: "... FROM SPORTS_FINANCIALS ...", Unit: "FIN", Clause: "from", SQL: "SPORTS_FINANCIALS"},
		{Description: "Compute the final answer."},
	}}
}

func TestRenderPromptContainsFig2Sections(t *testing.T) {
	out := RenderPrompt(sampleContext(), samplePlan())
	for _, want := range []string{
		"### Schema", "### Evidence", "### Instructions", "### Examples",
		"### Question", "### Plan", "### Retrieval directives",
		"-1 multiplier", "... FROM SPORTS_FINANCIALS ...",
		"pseudo_sql", "QoQFP",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prompt missing %q", want)
		}
	}
}

func TestRenderPromptFullSQLExamples(t *testing.T) {
	out := RenderPrompt(sampleContext(), nil)
	if !strings.Contains(out, "SQL: SELECT 1") {
		t.Error("full-SQL example not rendered in traditional form")
	}
}

func TestRenderPromptSelfCorrectionSection(t *testing.T) {
	ctx := sampleContext()
	ctx.PriorSQL = "SELECT broken"
	ctx.PriorError = "syntax error at 1:8"
	out := RenderPrompt(ctx, nil)
	if !strings.Contains(out, "### Previous attempt") || !strings.Contains(out, "syntax error at 1:8") {
		t.Error("self-correction context not rendered")
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	plan := samplePlan()
	data := RenderPlanJSON(plan)
	if !strings.Contains(data, `"step": 1`) {
		t.Errorf("plan JSON missing step numbering:\n%s", data)
	}
	parsed, err := ParsePlanJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Steps) != len(plan.Steps) {
		t.Fatalf("round trip changed step count: %d != %d", len(parsed.Steps), len(plan.Steps))
	}
	for i := range parsed.Steps {
		if parsed.Steps[i].Description != plan.Steps[i].Description {
			t.Errorf("step %d description changed", i)
		}
		if parsed.Steps[i].Pseudo != plan.Steps[i].Pseudo {
			t.Errorf("step %d pseudo changed", i)
		}
	}
}

func TestParsePlanJSONRejectsGarbage(t *testing.T) {
	if _, err := ParsePlanJSON("{nope"); err == nil {
		t.Error("garbage plan JSON should fail to parse")
	}
}

func TestRenderPromptEmptyPlanOmitsSection(t *testing.T) {
	out := RenderPrompt(sampleContext(), &Plan{})
	if strings.Contains(out, "### Plan") {
		t.Error("empty plan should omit the plan section")
	}
}
