// Package llm defines the typed operator interfaces between GenEdit's
// pipeline and the underlying language model, plus the prompt renderer that
// reproduces the structure of the paper's Fig. 2 generation prompt.
//
// The production system calls GPT-4o behind each of these methods; this
// reproduction wires them to internal/simllm's deterministic model. Keeping
// the interface typed (rather than raw prompt strings) lets the pipeline,
// baselines and feedback module share one contract while the renderer
// produces the human-readable prompt for logging and the examples.
package llm

import (
	"genedit/internal/schema"
)

// RetrievedExample is a knowledge-set example selected for generation.
type RetrievedExample struct {
	ID     string
	NL     string
	Pseudo string
	SQL    string
	Clause string
	Terms  []string
	Score  float64
	// FullSQL carries the whole source query when decomposition is ablated
	// (Table 2's "w/o Decomposition" row uses traditional full-query
	// few-shot examples).
	FullSQL string
}

// RetrievedInstruction is a knowledge-set instruction selected for
// generation.
type RetrievedInstruction struct {
	ID      string
	Text    string
	SQLHint string
	Terms   []string
	Score   float64
}

// IntentOption is one intent the classifier may assign.
type IntentOption struct {
	ID          string
	Name        string
	Description string
}

// PlanStep is one step of the CoT plan: a natural-language description
// optionally anchored by pseudo-SQL (§3.1.2).
type PlanStep struct {
	Description string
	// Pseudo is the pseudo-SQL display form; empty when the step has no
	// anchor (ablated, or no similar example was retrieved).
	Pseudo string
	// Unit and Clause locate the step's fragment within the output query
	// (CTE name + clause kind); used when composing the final SQL.
	Unit   string
	Clause string
	// SQL is the fragment content backing Pseudo; empty when unanchored.
	SQL string
	// AnchorSQL is the anchoring example's raw sub-statement when it
	// differs from the target fragment (same pattern, different
	// parameters); generation may copy it insufficiently adapted.
	AnchorSQL string
	// Distinct propagates SELECT DISTINCT for projection fragments.
	Distinct bool
}

// Plan is the chain-of-thought plan: an ordered list of steps, serialized
// into the prompt as a JSON object per §3.1.2.
type Plan struct {
	Steps []PlanStep
}

// Context is the assembled generation context: everything the prompt of
// Fig. 2 contains besides the plan.
type Context struct {
	// Question is the reformulated canonical question.
	Question string
	// Original is the user's question before reformulation.
	Original string
	// DB names the target database.
	DB string
	// Intents are the classified intent names.
	Intents []string
	// Examples are the selected decomposed examples.
	Examples []RetrievedExample
	// Instructions are the selected instructions.
	Instructions []RetrievedInstruction
	// SchemaDDL is the (possibly linked-subset) schema description.
	SchemaDDL string
	// LinkedElements are the schema-linking output columns; empty when
	// schema linking is disabled (full schema in context).
	LinkedElements []schema.Element
	// Evidence is the benchmark-provided external knowledge string.
	Evidence string
	// Directives are knowledge-set retrieval directives in force.
	Directives []string
	// Attempt is the regeneration attempt number (0 = first).
	Attempt int
	// PriorSQL and PriorError carry self-correction context (§3, operator 8).
	PriorSQL   string
	PriorError string
}

// Model is the full operator contract GenEdit needs from a language model.
type Model interface {
	// Reformulate rewrites the query into the canonical "Show me ..." form
	// (inference operator 1).
	Reformulate(question string) (string, error)
	// ClassifyIntents picks the user intents (operator 2).
	ClassifyIntents(question string, options []IntentOption) ([]string, error)
	// LinkSchema identifies relevant schema elements (operator 5).
	LinkSchema(question string, full *schema.Schema, ctx *Context) ([]schema.Element, error)
	// Plan produces the CoT plan with pseudo-SQL (operator 6).
	Plan(ctx *Context) (Plan, error)
	// GenerateSQL produces a candidate query from the plan (operator 7).
	GenerateSQL(ctx *Context, plan Plan) (string, error)
	// RepairSQL regenerates after execution feedback (operators 8-9).
	RepairSQL(ctx *Context, plan Plan, priorSQL, execError string) (string, error)
}

// ClauseFragment is one decomposed clause of a failing query, handed to the
// clause-level correction operator. It mirrors internal/decompose.Fragment
// without importing it, keeping this package dependency-light.
type ClauseFragment struct {
	// Unit is the CTE/statement name the clause belongs to ("" for the
	// final statement).
	Unit string
	// Clause is the clause kind (projection, from, where, group_by,
	// having, order_by, limit, offset, whole).
	Clause string
	// SQL is the clause content.
	SQL string
	// Distinct propagates SELECT DISTINCT for projection fragments.
	Distinct bool
}

// ClauseEdit is one clause-level repair proposed by the correction operator:
// replace (or insert) the clause's content, or delete the clause entirely.
type ClauseEdit struct {
	Unit   string
	Clause string
	// SQL is the replacement clause content (ignored when Delete is set).
	SQL string
	// Distinct sets SELECT DISTINCT on a projection clause.
	Distinct bool
	// Delete removes the clause from the unit.
	Delete bool
}

// ClauseEditor is an optional capability of a Model: instead of regenerating
// a failing query from scratch (RepairSQL), propose targeted edits against
// the decomposed clause fragments of the prior attempt. The pipeline probes
// for this interface when clause-level correction is enabled and falls back
// to RepairSQL when absent or when the prior SQL cannot be decomposed
// (e.g. a syntax failure).
type ClauseEditor interface {
	// EditClauses returns clause-level edits repairing the failing query.
	// An empty slice means the model has no targeted fix; the caller falls
	// back to full regeneration.
	EditClauses(ctx *Context, plan Plan, fragments []ClauseFragment, execError string) ([]ClauseEdit, error)
}

// FeedbackModel is the operator contract of the edits-recommendation module
// (§4.1, feedback operators 1-4).
type FeedbackModel interface {
	// GenerateTargets selects which retrieved items the feedback concerns
	// and explains why (feedback operator 1).
	GenerateTargets(req *FeedbackRequest) ([]FeedbackTarget, error)
	// ExpandFeedback elaborates the explanation (operator 2).
	ExpandFeedback(req *FeedbackRequest, targets []FeedbackTarget) (string, error)
	// PlanEdits produces a step-by-step edit plan (operator 3).
	PlanEdits(req *FeedbackRequest, expanded string, targets []FeedbackTarget) ([]string, error)
	// GenerateEdits produces the revised knowledge content (operator 4).
	// The returned payloads use knowledge-set representations; the feedback
	// package converts them into knowledge.Edit values.
	GenerateEdits(req *FeedbackRequest, plan []string, targets []FeedbackTarget) ([]EditDraft, error)
}

// FeedbackRequest bundles what the feedback operators see: the generation
// record context and the user's free-text feedback.
type FeedbackRequest struct {
	Question     string
	Reformulated string
	GeneratedSQL string
	ExecFeedback string
	UserFeedback string
	Examples     []RetrievedExample
	Instructions []RetrievedInstruction
	DB           string
}

// FeedbackTarget is one retrieved item the feedback is judged relevant to.
type FeedbackTarget struct {
	Kind string // "example" | "instruction" | "new"
	ID   string
	Why  string
}

// EditDraft is a model-produced edit before conversion to knowledge.Edit.
type EditDraft struct {
	Op        string // "insert" | "update" | "delete" | "directive"
	Kind      string // "example" | "instruction" | "retrieval_directive"
	ID        string
	NL        string
	SQL       string
	Pseudo    string
	Clause    string
	Text      string
	SQLHint   string
	Terms     []string
	Directive string
	Rationale string
}
