package llm

import (
	"encoding/json"
	"fmt"
	"strings"
)

// RenderPrompt produces the generation prompt in the structure of the
// paper's Fig. 2: retrieved knowledge (schema, instructions, decomposed
// examples), the reformulated question, and the CoT plan serialized as a
// JSON object with (description, pseudo-SQL) pairs.
func RenderPrompt(ctx *Context, plan *Plan) string {
	var sb strings.Builder
	sb.WriteString("### Task\n")
	sb.WriteString("Translate the question into a single SQL query for the ")
	sb.WriteString(ctx.DB)
	sb.WriteString(" database. Follow the plan step by step; each step may include\n")
	sb.WriteString("pseudo-SQL marked with leading and trailing dots indicating it is part of a larger query.\n\n")

	if ctx.SchemaDDL != "" {
		sb.WriteString("### Schema\n")
		sb.WriteString(ctx.SchemaDDL)
		sb.WriteString("\n")
	}
	if ctx.Evidence != "" {
		sb.WriteString("### Evidence\n")
		sb.WriteString(ctx.Evidence)
		sb.WriteString("\n\n")
	}
	if len(ctx.Instructions) > 0 {
		sb.WriteString("### Instructions\n")
		for i, ins := range ctx.Instructions {
			fmt.Fprintf(&sb, "%d. %s", i+1, ins.Text)
			if ins.SQLHint != "" {
				fmt.Fprintf(&sb, " (expected SQL: %s)", ins.SQLHint)
			}
			sb.WriteString("\n")
		}
		sb.WriteString("\n")
	}
	if len(ctx.Examples) > 0 {
		sb.WriteString("### Examples\n")
		for i, ex := range ctx.Examples {
			if ex.FullSQL != "" {
				fmt.Fprintf(&sb, "%d. %s\n   SQL: %s\n", i+1, ex.NL, ex.FullSQL)
				continue
			}
			fmt.Fprintf(&sb, "%d. %s\n   %s\n", i+1, ex.NL, ex.Pseudo)
		}
		sb.WriteString("\n")
	}
	if len(ctx.Directives) > 0 {
		sb.WriteString("### Retrieval directives\n")
		for _, d := range ctx.Directives {
			sb.WriteString("- " + d + "\n")
		}
		sb.WriteString("\n")
	}

	sb.WriteString("### Question\n")
	sb.WriteString(ctx.Question)
	sb.WriteString("\n\n")

	if plan != nil && len(plan.Steps) > 0 {
		sb.WriteString("### Plan\n")
		sb.WriteString(RenderPlanJSON(plan))
		sb.WriteString("\n")
	}

	if ctx.PriorSQL != "" {
		sb.WriteString("\n### Previous attempt\n")
		sb.WriteString(ctx.PriorSQL)
		sb.WriteString("\n### Error\n")
		sb.WriteString(ctx.PriorError)
		sb.WriteString("\nRegenerate the query fixing the error.\n")
	}
	return sb.String()
}

// planStepJSON is the serialized plan step form: the paper represents the
// plan as a JSON object with an ordered list of (description, pseudo-SQL)
// pairs.
type planStepJSON struct {
	Step        int    `json:"step"`
	Description string `json:"description"`
	PseudoSQL   string `json:"pseudo_sql,omitempty"`
}

type planJSON struct {
	Steps []planStepJSON `json:"steps"`
}

// RenderPlanJSON serializes the plan as indented JSON for the prompt.
func RenderPlanJSON(plan *Plan) string {
	pj := planJSON{}
	for i, s := range plan.Steps {
		pj.Steps = append(pj.Steps, planStepJSON{
			Step:        i + 1,
			Description: s.Description,
			PseudoSQL:   s.Pseudo,
		})
	}
	data, err := json.MarshalIndent(pj, "", "  ")
	if err != nil {
		return "{}"
	}
	return string(data)
}

// ParsePlanJSON decodes a serialized plan (used by tests and the kbctl
// inspection tool).
func ParsePlanJSON(data string) (*Plan, error) {
	var pj planJSON
	if err := json.Unmarshal([]byte(data), &pj); err != nil {
		return nil, err
	}
	plan := &Plan{}
	for _, s := range pj.Steps {
		plan.Steps = append(plan.Steps, PlanStep{Description: s.Description, Pseudo: s.PseudoSQL})
	}
	return plan, nil
}
