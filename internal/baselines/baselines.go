// Package baselines reimplements the pipeline shapes of the five systems
// GenEdit is compared against in Table 1, over the same simulated-model
// substrate. Each baseline captures the defining architecture of its paper:
//
//   - CHESS   — contextual retrieval, strong schema selection, candidate
//     generation with a revision loop (Talaei et al., 2024).
//   - MAC-SQL — multi-agent selector / decomposer / refiner: schema
//     selection, an NL sub-question plan, refine-on-error (Wang et al.).
//   - TA-SQL  — task alignment: schema linking plus aligned direct
//     generation, one repair pass (Qu et al., 2024).
//   - DAIL-SQL — masked-question-similarity few-shot with full-SQL
//     examples, no schema pruning (Gao et al., 2023).
//   - C3-SQL  — zero-shot ChatGPT-style: calibrated prompt, schema
//     filtering, no examples, no retries (Dong et al., 2023).
//
// Baselines do not see GenEdit's knowledge set: they receive the benchmark
// evidence string and (where their design calls for it) the raw historical
// query log as few-shot examples. Capability differences are expressed as
// simllm profiles; every draw is salted by the system name.
package baselines

import (
	"fmt"

	"genedit/internal/embed"
	"genedit/internal/llm"
	"genedit/internal/schema"
	"genedit/internal/simllm"
	"genedit/internal/sqlexec"
	"genedit/internal/task"
	"genedit/internal/workload"
)

// shape controls which architectural pieces a baseline uses.
type shape struct {
	// reformulate rewrites the question first (CHESS normalizes input).
	reformulate bool
	// schemaLinking selects schema elements before generation.
	schemaLinking bool
	// plan produces an NL decomposition (MAC-SQL's decomposer agent);
	// baselines never have pseudo-SQL anchors — that is GenEdit's novelty —
	// so plans carry descriptions only.
	plan bool
	// fewShot attaches full-SQL examples retrieved from the query log by
	// question similarity (DAIL-SQL; CHESS retrieves context too).
	fewShot int
	// retries is the self-correction budget.
	retries int
}

// Baseline is one comparison system bound to the benchmark suite.
type Baseline struct {
	name    string
	model   *simllm.Model
	shape   shape
	schemas map[string]*schema.Schema
	execs   map[string]*sqlexec.Executor
	logs    map[string][]logExample
}

type logExample struct {
	question string
	sql      string
}

// New constructs a baseline over a suite.
func New(name string, profile simllm.Profile, sh shape, suite *workload.Suite, seed uint64) *Baseline {
	b := &Baseline{
		name:    name,
		model:   simllm.New(profile, suite.Registry, seed),
		shape:   sh,
		schemas: suite.Schemas,
		execs:   make(map[string]*sqlexec.Executor, len(suite.Databases)),
		logs:    make(map[string][]logExample, len(suite.KB)),
	}
	for dbName, db := range suite.Databases {
		b.execs[dbName] = sqlexec.New(db)
	}
	for dbName, in := range suite.KB {
		for _, entry := range in.Logs {
			b.logs[dbName] = append(b.logs[dbName], logExample{question: entry.Question, sql: entry.SQL})
		}
	}
	return b
}

// Name implements eval.System.
func (b *Baseline) Name() string { return b.name }

// Generate implements eval.System: run the baseline's pipeline shape.
func (b *Baseline) Generate(c *task.Case) (string, error) {
	sch, ok := b.schemas[c.DB]
	if !ok {
		return "", fmt.Errorf("%s: unknown database %q", b.name, c.DB)
	}
	question := c.Question
	if b.shape.reformulate {
		q, err := b.model.Reformulate(question)
		if err != nil {
			return "", err
		}
		question = q
	}

	ctx := llm.Context{
		Question: question,
		Original: c.Question,
		DB:       c.DB,
		Evidence: c.Evidence,
	}

	if b.shape.fewShot > 0 {
		ctx.Examples = b.selectFewShot(c.DB, question, b.shape.fewShot)
	}

	if b.shape.schemaLinking {
		els, err := b.model.LinkSchema(question, sch, &ctx)
		if err != nil {
			return "", err
		}
		linked := make([]schema.Element, 0, len(els))
		linked = append(linked, els...)
		ctx.LinkedElements = linked
		sub := sch.Subset(linked)
		if sub.ColumnCount() == 0 {
			ctx.SchemaDDL = sch.DDL()
		} else {
			ctx.SchemaDDL = sub.DDL()
		}
	} else {
		ctx.SchemaDDL = sch.DDL()
	}

	var plan llm.Plan
	if b.shape.plan {
		p, err := b.model.Plan(&ctx)
		if err != nil {
			return "", err
		}
		// Baseline decomposers produce natural-language sub-questions, not
		// pseudo-SQL; strip the anchors GenEdit would keep.
		for i := range p.Steps {
			p.Steps[i].Pseudo = ""
			p.Steps[i].SQL = ""
		}
		plan = p
	}

	sql, err := b.model.GenerateSQL(&ctx, plan)
	if err != nil {
		return "", err
	}
	exec := b.execs[c.DB]
	for attempt := 0; attempt < b.shape.retries; attempt++ {
		_, execErr := exec.Query(sql)
		if execErr == nil {
			break
		}
		ctx.Attempt = attempt + 1
		ctx.PriorSQL = sql
		ctx.PriorError = execErr.Error()
		repaired, rerr := b.model.RepairSQL(&ctx, plan, sql, execErr.Error())
		if rerr != nil || repaired == "" {
			break
		}
		sql = repaired
	}
	return sql, nil
}

// selectFewShot retrieves the k most similar log entries as full-SQL
// examples (DAIL-SQL's masked-question similarity, approximated by the
// deterministic embedding).
func (b *Baseline) selectFewShot(db, question string, k int) []llm.RetrievedExample {
	logs := b.logs[db]
	qv := embed.Text(maskLiterals(question))
	type scored struct {
		ex    logExample
		score float64
	}
	items := make([]scored, 0, len(logs))
	for _, le := range logs {
		items = append(items, scored{ex: le, score: embed.Cosine(qv, embed.Text(maskLiterals(le.question)))})
	}
	// Selection sort for the top k keeps this dependency-free and stable.
	var out []llm.RetrievedExample
	used := make([]bool, len(items))
	for n := 0; n < k && n < len(items); n++ {
		best := -1
		for i := range items {
			if used[i] {
				continue
			}
			if best < 0 || items[i].score > items[best].score {
				best = i
			}
		}
		used[best] = true
		out = append(out, llm.RetrievedExample{
			ID:      fmt.Sprintf("%s-shot-%d", b.name, n+1),
			NL:      items[best].ex.question,
			FullSQL: items[best].ex.sql,
			Score:   items[best].score,
		})
	}
	return out
}

// maskLiterals approximates DAIL's question masking: digits become a
// placeholder so parameter values don't dominate similarity.
func maskLiterals(s string) string {
	out := []byte(s)
	for i := range out {
		if out[i] >= '0' && out[i] <= '9' {
			out[i] = '#'
		}
	}
	return string(out)
}
