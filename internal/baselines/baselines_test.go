package baselines

import (
	"strings"
	"testing"

	"genedit/internal/task"
	"genedit/internal/workload"
)

func TestAllForSuiteShapes(t *testing.T) {
	suite := workload.NewSuite(1)
	bs := AllForSuite(suite, 42)
	if len(bs) != 5 {
		t.Fatalf("baselines = %d, want 5", len(bs))
	}
	wantNames := []string{"CHESS", "MAC-SQL", "TA-SQL", "DAIL-SQL", "C3-SQL"}
	for i, b := range bs {
		if b.Name() != wantNames[i] {
			t.Errorf("baseline %d = %s, want %s", i, b.Name(), wantNames[i])
		}
	}
}

func TestBaselinesGenerateExecutableSQLMostly(t *testing.T) {
	suite := workload.NewSuite(1)
	for _, b := range AllForSuite(suite, 42) {
		bad := 0
		cases := suite.CasesByDifficulty(task.Simple)[:20]
		for _, c := range cases {
			sql, err := b.Generate(c)
			if err != nil {
				t.Fatalf("%s: %v", b.Name(), err)
			}
			exec, _ := suite.Executor(c.DB)
			if _, err := exec.Query(sql); err != nil {
				bad++
			}
		}
		if bad > len(cases)/2 {
			t.Errorf("%s produced %d/%d non-executable queries", b.Name(), bad, len(cases))
		}
	}
}

func TestBaselinesAreDeterministic(t *testing.T) {
	suite := workload.NewSuite(1)
	c := suite.Cases[0]
	for _, mk := range []func() *Baseline{
		func() *Baseline { return AllForSuite(workload.NewSuite(1), 42)[0] },
	} {
		a, err := mk().Generate(c)
		if err != nil {
			t.Fatal(err)
		}
		b, err := mk().Generate(c)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Error("baseline generation is not deterministic across identical constructions")
		}
	}
}

func TestFewShotSelectsSimilarLogEntries(t *testing.T) {
	suite := workload.NewSuite(1)
	dail := AllForSuite(suite, 42)[3]
	if dail.Name() != "DAIL-SQL" {
		t.Fatal("baseline order changed")
	}
	shots := dail.selectFewShot("sports_holdings",
		"top 5 sports organisations by total revenue in Canada for 2023", 3)
	if len(shots) != 3 {
		t.Fatalf("few-shot = %d examples, want 3", len(shots))
	}
	if shots[0].FullSQL == "" {
		t.Error("few-shot examples must be full SQL")
	}
	// The most similar log entry is the top-N template variant.
	if !strings.Contains(shots[0].NL, "top") {
		t.Errorf("top shot = %q, expected the top-N log variant first", shots[0].NL)
	}
	if shots[0].Score < shots[1].Score || shots[1].Score < shots[2].Score {
		t.Error("few-shot not sorted by similarity")
	}
}

func TestMaskLiterals(t *testing.T) {
	if got := maskLiterals("top 5 orgs in 2023"); got != "top # orgs in ####" {
		t.Errorf("maskLiterals = %q", got)
	}
}

func TestBaselineUnknownDatabase(t *testing.T) {
	suite := workload.NewSuite(1)
	b := AllForSuite(suite, 42)[0]
	_, err := b.Generate(&task.Case{ID: "x", DB: "nope", Question: "q"})
	if err == nil {
		t.Error("unknown database should error")
	}
}

func TestProfilesAreDistinct(t *testing.T) {
	names := map[string]bool{}
	for _, p := range []string{
		CHESSProfile().Name, MACSQLProfile().Name, TASQLProfile().Name,
		DAILSQLProfile().Name, C3SQLProfile().Name,
	} {
		if names[p] {
			t.Errorf("duplicate profile name %s (draw salts would collide)", p)
		}
		names[p] = true
	}
}
