package baselines

import (
	"genedit/internal/simllm"
	"genedit/internal/task"
	"genedit/internal/workload"
)

// Profiles for the five comparison systems. The numbers were calibrated so
// the reproduced Table 1 matches the paper's shape: CHESS leads overall,
// GenEdit wins Simple, MAC-SQL > TA-SQL > DAIL-SQL > C3-SQL, with
// challenging accuracy decaying for the weaker zero-shot systems (see
// EXPERIMENTS.md for the paper-vs-measured record).

// CHESSProfile models a strong retrieval-augmented pipeline with good
// schema selection and generous revision.
func CHESSProfile() simllm.Profile {
	return simllm.Profile{
		Name:                      "chess",
		DeriveBase:                0.92,
		DerivePenalty:             0.020,
		FreeSteps:                 7,
		NoDescriptionFactor:       0.95,
		DecoyResistance:           0.7,
		LinkedDecoySlip:           0.05,
		LinkMissRate:              0.010,
		MissedColumnError:         0.6,
		OverloadFactor:            0.015,
		EvidenceUse:               0.85,
		SyntaxSlipRate:            0.04,
		RepairSkill:               0.95,
		Residual:                  map[task.Difficulty]float64{task.Simple: 0.25, task.Moderate: 0.13, task.Challenging: 0.24},
		AnchorThreshold:           0.99, // baselines have no pseudo-SQL anchoring
		WholeQueryAnchorThreshold: 0.93, // context retrieval occasionally pins a near-identical query
		AnchorCopySlip:            0.20,
	}
}

// MACSQLProfile models the selector/decomposer/refiner agents.
func MACSQLProfile() simllm.Profile {
	return simllm.Profile{
		Name:                      "mac-sql",
		DeriveBase:                0.88,
		DerivePenalty:             0.04,
		FreeSteps:                 6,
		NoDescriptionFactor:       0.9,
		DecoyResistance:           0.6,
		LinkedDecoySlip:           0.07,
		LinkMissRate:              0.015,
		MissedColumnError:         0.7,
		OverloadFactor:            0.02,
		EvidenceUse:               0.7,
		SyntaxSlipRate:            0.05,
		RepairSkill:               0.9,
		Residual:                  map[task.Difficulty]float64{task.Simple: 0.13, task.Moderate: 0.30, task.Challenging: 0.40},
		AnchorThreshold:           0.99,
		WholeQueryAnchorThreshold: 0.99,
	}
}

// TASQLProfile models task-aligned direct generation.
func TASQLProfile() simllm.Profile {
	return simllm.Profile{
		Name:                      "ta-sql",
		DeriveBase:                0.93,
		DerivePenalty:             0.05,
		FreeSteps:                 6,
		NoDescriptionFactor:       0.96,
		DecoyResistance:           0.55,
		LinkedDecoySlip:           0.08,
		LinkMissRate:              0.02,
		MissedColumnError:         0.7,
		OverloadFactor:            0.022,
		EvidenceUse:               0.62,
		SyntaxSlipRate:            0.05,
		RepairSkill:               0.88,
		Residual:                  map[task.Difficulty]float64{task.Simple: 0.26, task.Moderate: 0.345, task.Challenging: 0.05},
		AnchorThreshold:           0.99,
		WholeQueryAnchorThreshold: 0.99,
	}
}

// DAILSQLProfile models similarity few-shot prompting without schema
// pruning.
func DAILSQLProfile() simllm.Profile {
	return simllm.Profile{
		Name:                      "dail-sql",
		DeriveBase:                0.93,
		DerivePenalty:             0.035,
		FreeSteps:                 5,
		NoDescriptionFactor:       0.96,
		DecoyResistance:           0.80,
		LinkedDecoySlip:           0.08,
		LinkMissRate:              0.02,
		MissedColumnError:         0.7,
		OverloadFactor:            0.02,
		EvidenceUse:               0.55,
		SyntaxSlipRate:            0.05,
		RepairSkill:               0.88,
		Residual:                  map[task.Difficulty]float64{task.Simple: 0.15, task.Moderate: 0.38, task.Challenging: 0.02},
		AnchorThreshold:           0.99,
		WholeQueryAnchorThreshold: 0.88, // full-SQL few-shot can anchor near-identical queries
		AnchorCopySlip:            0.12,
	}
}

// C3SQLProfile models calibrated zero-shot prompting.
func C3SQLProfile() simllm.Profile {
	return simllm.Profile{
		Name:                      "c3-sql",
		DeriveBase:                0.90,
		DerivePenalty:             0.045,
		FreeSteps:                 5,
		NoDescriptionFactor:       0.95,
		DecoyResistance:           0.5,
		LinkedDecoySlip:           0.1,
		LinkMissRate:              0.03,
		MissedColumnError:         0.75,
		OverloadFactor:            0.025,
		EvidenceUse:               0.5,
		SyntaxSlipRate:            0.06,
		RepairSkill:               0.85,
		Residual:                  map[task.Difficulty]float64{task.Simple: 0.05, task.Moderate: 0.24, task.Challenging: 0.25},
		AnchorThreshold:           0.99,
		WholeQueryAnchorThreshold: 0.99,
	}
}

// AllForSuite constructs the five Table 1 baselines bound to a suite.
func AllForSuite(suite *workload.Suite, seed uint64) []*Baseline {
	return []*Baseline{
		New("CHESS", CHESSProfile(), shape{
			reformulate: true, schemaLinking: true, plan: true, fewShot: 4, retries: 2,
		}, suite, seed),
		New("MAC-SQL", MACSQLProfile(), shape{
			schemaLinking: true, plan: true, retries: 2,
		}, suite, seed),
		New("TA-SQL", TASQLProfile(), shape{
			schemaLinking: true, retries: 1,
		}, suite, seed),
		New("DAIL-SQL", DAILSQLProfile(), shape{
			fewShot: 5, retries: 1,
		}, suite, seed),
		New("C3-SQL", C3SQLProfile(), shape{
			schemaLinking: true, retries: 0,
		}, suite, seed),
	}
}
