package sqldb

import "testing"

func colTable() *Table {
	t := &Table{
		Name: "T",
		Columns: []Column{
			{Name: "I", Type: "INTEGER"},
			{Name: "F", Type: "FLOAT"},
			{Name: "S", Type: "TEXT"},
			{Name: "M", Type: "TEXT"},
			{Name: "N", Type: "TEXT"},
		},
	}
	t.Rows = []Row{
		{Int(1), Float(1.5), Str("a"), Int(7), Null()},
		{Int(2), Null(), Str("b"), Str("x"), Null()},
		{Null(), Float(-2.25), Null(), Float(3.5), Null()},
	}
	return t
}

func TestColumnarizeRoundTrips(t *testing.T) {
	tab := colTable()
	c := Columnarize(tab)
	if c.NRows != len(tab.Rows) {
		t.Fatalf("NRows = %d, want %d", c.NRows, len(tab.Rows))
	}
	for ci := range tab.Columns {
		for ri, row := range tab.Rows {
			got, want := c.Cols[ci].Value(ri), row[ci]
			if got.IsNull() != want.IsNull() || (!got.IsNull() && !got.Equal(want)) {
				t.Fatalf("col %d row %d: got %v, want %v", ci, ri, got, want)
			}
			if c.Cols[ci].Null(ri) != want.IsNull() {
				t.Fatalf("col %d row %d: Null() = %v, want %v", ci, ri, c.Cols[ci].Null(ri), want.IsNull())
			}
		}
	}
}

func TestColumnarizeKinds(t *testing.T) {
	c := Columnarize(colTable())
	if c.Cols[0].Kind != KindInt || c.Cols[0].Mixed {
		t.Fatalf("I: kind %v mixed %v, want uniform int", c.Cols[0].Kind, c.Cols[0].Mixed)
	}
	if c.Cols[1].Kind != KindFloat || c.Cols[1].Nulls == nil {
		t.Fatalf("F: want uniform float with null bitmap")
	}
	if c.Cols[2].Kind != KindString {
		t.Fatalf("S: kind %v, want string", c.Cols[2].Kind)
	}
	if !c.Cols[3].Mixed {
		t.Fatalf("M: want mixed column fallback")
	}
	if c.Cols[4].Kind != KindNull || c.Cols[4].Mixed {
		t.Fatalf("N: all-NULL column should stay KindNull, got %v mixed=%v", c.Cols[4].Kind, c.Cols[4].Mixed)
	}
}

func TestColumnarizeEmptyTable(t *testing.T) {
	tab := &Table{Name: "E", Columns: []Column{{Name: "A"}, {Name: "B"}}}
	c := Columnarize(tab)
	if c.NRows != 0 || len(c.Cols) != 2 {
		t.Fatalf("empty table: NRows %d cols %d", c.NRows, len(c.Cols))
	}
	for ci := range c.Cols {
		if c.Cols[ci].Kind != KindNull {
			t.Fatalf("empty col %d: kind %v", ci, c.Cols[ci].Kind)
		}
	}
}

func TestBitmap(t *testing.T) {
	b := NewBitmap(130)
	for _, i := range []int{0, 63, 64, 129} {
		if b.Get(i) {
			t.Fatalf("fresh bitmap has bit %d set", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if b.Get(1) || b.Get(65) {
		t.Fatalf("unrelated bits set")
	}
	b.Clear()
	if b.Get(0) || b.Get(129) {
		t.Fatalf("Clear left bits set")
	}
	var nilB Bitmap
	if nilB.Get(5) {
		t.Fatalf("nil bitmap Get should report false")
	}
}
