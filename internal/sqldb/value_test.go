package sqldb

import (
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndRender(t *testing.T) {
	tests := []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{Int(42), "42"},
		{Int(-7), "-7"},
		{Float(2.5), "2.5"},
		{Float(3), "3"},
		{Str("hello"), "hello"},
		{Bool(true), "TRUE"},
		{Bool(false), "FALSE"},
	}
	for _, tt := range tests {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("%+v.String() = %q, want %q", tt.v, got, tt.want)
		}
	}
}

func TestAsFloat(t *testing.T) {
	tests := []struct {
		v    Value
		want float64
		ok   bool
	}{
		{Int(3), 3, true},
		{Float(1.5), 1.5, true},
		{Str("2.25"), 2.25, true},
		{Str(" 7 "), 7, true},
		{Str("abc"), 0, false},
		{Bool(true), 1, true},
		{Null(), 0, false},
	}
	for _, tt := range tests {
		got, ok := tt.v.AsFloat()
		if got != tt.want || ok != tt.ok {
			t.Errorf("%v.AsFloat() = (%v, %v), want (%v, %v)", tt.v, got, ok, tt.want, tt.ok)
		}
	}
}

func TestCompare(t *testing.T) {
	tests := []struct {
		a, b Value
		want int
		ok   bool
	}{
		{Int(1), Int(2), -1, true},
		{Int(2), Float(2.0), 0, true},
		{Float(3.5), Int(3), 1, true},
		{Str("a"), Str("b"), -1, true},
		{Bool(false), Bool(true), -1, true},
		{Null(), Int(1), 0, false},
		{Null(), Null(), 0, true},
		{Str("10"), Int(9), -1, true}, // string vs int compares as strings: "10" < "9"
	}
	for _, tt := range tests {
		got, ok := Compare(tt.a, tt.b)
		if ok != tt.ok {
			t.Errorf("Compare(%v, %v) ok = %v, want %v", tt.a, tt.b, ok, tt.ok)
			continue
		}
		if !ok {
			continue
		}
		// For the mixed string/int case only the sign is asserted elsewhere.
		if tt.a.K == tt.b.K || (tt.a.IsNumeric() && tt.b.IsNumeric()) {
			if got != tt.want {
				t.Errorf("Compare(%v, %v) = %d, want %d", tt.a, tt.b, got, tt.want)
			}
		}
	}
}

func TestCompareForSortTotalOrder(t *testing.T) {
	vals := []Value{Null(), Int(1), Float(1.5), Str("x"), Bool(true)}
	for _, a := range vals {
		if CompareForSort(a, a) != 0 {
			t.Errorf("CompareForSort(%v, %v) != 0", a, a)
		}
		for _, b := range vals {
			if CompareForSort(a, b) != -CompareForSort(b, a) {
				t.Errorf("CompareForSort not antisymmetric for %v, %v", a, b)
			}
		}
	}
	if CompareForSort(Null(), Int(0)) != -1 {
		t.Error("NULL should sort first")
	}
}

func TestKeyEquatesIntAndFloat(t *testing.T) {
	if Int(3).Key() != Float(3).Key() {
		t.Error("3 and 3.0 should share a grouping key")
	}
	if Int(3).Key() == Str("3").Key() {
		t.Error("int 3 and string \"3\" must not share a grouping key")
	}
}

func TestCast(t *testing.T) {
	tests := []struct {
		v    Value
		typ  string
		want Value
		err  bool
	}{
		{Str("3.5"), "FLOAT", Float(3.5), false},
		{Float(3.9), "INTEGER", Int(3), false},
		{Int(5), "TEXT", Str("5"), false},
		{Str("true"), "BOOLEAN", Bool(true), false},
		{Int(0), "BOOLEAN", Bool(false), false},
		{Str("abc"), "FLOAT", Null(), true},
		{Null(), "INTEGER", Null(), false},
		{Int(7), "VARCHAR(20)", Str("7"), false},
		{Str("2.5"), "DECIMAL(10,2)", Float(2.5), false},
	}
	for _, tt := range tests {
		got, err := Cast(tt.v, tt.typ)
		if (err != nil) != tt.err {
			t.Errorf("Cast(%v, %s) err = %v, want err=%v", tt.v, tt.typ, err, tt.err)
			continue
		}
		if err == nil && !got.Equal(tt.want) && !(got.IsNull() && tt.want.IsNull()) {
			t.Errorf("Cast(%v, %s) = %v, want %v", tt.v, tt.typ, got, tt.want)
		}
	}
}

// Property: Compare is reflexive and antisymmetric over ints and floats.
func TestCompareProperties(t *testing.T) {
	f := func(a, b int32) bool {
		va, vb := Int(int64(a)), Int(int64(b))
		ca, _ := Compare(va, vb)
		cb, _ := Compare(vb, va)
		self, _ := Compare(va, va)
		return ca == -cb && self == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a float64) bool {
		v := Float(a)
		c, ok := Compare(v, v)
		if a != a { // NaN: engine renders NaN; equality with itself via string compare
			return ok
		}
		return ok && c == 0
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}
