package sqldb

import "testing"

func TestCompositeKeyInjective(t *testing.T) {
	// Pairs of rows that alias under naive delimiter-joined Key() encodings
	// but must produce distinct composite keys.
	pairs := [][2]Row{
		{{Str("a\x1f"), Str("b")}, {Str("a"), Str("\x1fb")}},
		{{Str("a"), Str("")}, {Str(""), Str("a")}},
		{{Str("1|x"), Str("y")}, {Str("1"), Str("|xy")}},
		{{Str("ab")}, {Str("a"), Str("b")}},
		{{Int(12), Str("3")}, {Int(1), Str("23")}},
		{{Null(), Str("")}, {Str(""), Null()}},
	}
	for _, p := range pairs {
		if CompositeKey(p[0]) == CompositeKey(p[1]) {
			t.Errorf("rows %v and %v alias to composite key %q", p[0], p[1], CompositeKey(p[0]))
		}
	}
}

func TestCompositeKeyEqualRows(t *testing.T) {
	// Numerically equal ints and floats share a Key(), so composite keys of
	// pairwise Key()-equal rows must match.
	a := Row{Int(3), Str("x\x1fy"), Bool(true)}
	b := Row{Float(3), Str("x\x1fy"), Bool(true)}
	if CompositeKey(a) != CompositeKey(b) {
		t.Errorf("Key()-equal rows produced different composite keys: %q vs %q",
			CompositeKey(a), CompositeKey(b))
	}
}

func TestAppendLengthPrefixed(t *testing.T) {
	got := string(AppendLengthPrefixed(AppendLengthPrefixed(nil, "ab"), ""))
	if got != "2|ab0|" {
		t.Errorf("encoding = %q, want %q", got, "2|ab0|")
	}
}

func TestAppendCompositeKeyMatchesCompositeKey(t *testing.T) {
	rows := []Row{
		nil,
		{},
		{Str("a\x1f"), Str("b")},
		{Int(12), Str("3"), Null(), Bool(false)},
		{Float(3.5), Str("")},
	}
	buf := make([]byte, 0, 64)
	for _, r := range rows {
		buf = buf[:0]
		buf = AppendCompositeKey(buf, r)
		if string(buf) != CompositeKey(r) {
			t.Errorf("AppendCompositeKey(%v) = %q, want %q", r, buf, CompositeKey(r))
		}
	}
	// Appending extends dst rather than replacing it.
	pre := AppendCompositeKey([]byte("x"), Row{Str("a")})
	if string(pre) != "x"+CompositeKey(Row{Str("a")}) {
		t.Errorf("AppendCompositeKey did not extend dst: %q", pre)
	}
}
