package sqldb

import (
	"fmt"
	"sort"
	"strings"
)

// Column describes one table column: its name and declared SQL type. Type is
// informational (used in schema prompts); values are dynamically typed.
type Column struct {
	Name string
	Type string
	// Description is optional documentation surfaced in schema prompts.
	Description string
}

// Row is one tuple of values.
type Row []Value

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Table is an in-memory relation.
type Table struct {
	Name    string
	Columns []Column
	Rows    []Row
}

// NewTable creates an empty table with the given columns.
func NewTable(name string, cols ...Column) *Table {
	return &Table{Name: name, Columns: cols}
}

// ColumnIndex returns the position of the named column (case-insensitive),
// or -1 when absent.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Append adds a row, validating arity.
func (t *Table) Append(vals ...Value) error {
	if len(vals) != len(t.Columns) {
		return fmt.Errorf("table %s: row has %d values, want %d", t.Name, len(vals), len(t.Columns))
	}
	t.Rows = append(t.Rows, Row(vals))
	return nil
}

// MustAppend adds a row and panics on arity mismatch; for use in static
// dataset builders where a mismatch is a programming error.
func (t *Table) MustAppend(vals ...Value) {
	if err := t.Append(vals...); err != nil {
		panic(err)
	}
}

// TopValues returns the k most frequent non-NULL values in the named column,
// most frequent first with ties broken by value order. This implements the
// paper's "top-5 most frequent values per attribute" schema augmentation.
func (t *Table) TopValues(column string, k int) []Value {
	idx := t.ColumnIndex(column)
	if idx < 0 || k <= 0 {
		return nil
	}
	counts := make(map[string]int)
	rep := make(map[string]Value)
	for _, row := range t.Rows {
		v := row[idx]
		if v.IsNull() {
			continue
		}
		key := v.Key()
		counts[key]++
		rep[key] = v
	}
	keys := make([]string, 0, len(counts))
	for key := range counts {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if counts[keys[i]] != counts[keys[j]] {
			return counts[keys[i]] > counts[keys[j]]
		}
		return CompareForSort(rep[keys[i]], rep[keys[j]]) < 0
	})
	if len(keys) > k {
		keys = keys[:k]
	}
	out := make([]Value, len(keys))
	for i, key := range keys {
		out[i] = rep[key]
	}
	return out
}

// Database is a named collection of tables.
type Database struct {
	Name   string
	tables map[string]*Table
	order  []string
}

// NewDatabase creates an empty database.
func NewDatabase(name string) *Database {
	return &Database{Name: name, tables: make(map[string]*Table)}
}

// AddTable registers a table, replacing any same-named table.
func (d *Database) AddTable(t *Table) {
	key := strings.ToUpper(t.Name)
	if _, exists := d.tables[key]; !exists {
		d.order = append(d.order, key)
	}
	d.tables[key] = t
}

// Table returns the named table (case-insensitive) or nil.
func (d *Database) Table(name string) *Table {
	return d.tables[strings.ToUpper(name)]
}

// Tables returns all tables in registration order.
func (d *Database) Tables() []*Table {
	out := make([]*Table, 0, len(d.order))
	for _, key := range d.order {
		out = append(out, d.tables[key])
	}
	return out
}

// TableNames returns table names in registration order.
func (d *Database) TableNames() []string {
	out := make([]string, 0, len(d.order))
	for _, key := range d.order {
		out = append(out, d.tables[key].Name)
	}
	return out
}
