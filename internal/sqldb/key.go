package sqldb

import "strconv"

// Length-prefixed composite key encoding, shared by every multi-column
// hashing site in the executor (GROUP BY, DISTINCT, compound set operations,
// window partitions, hash-join buckets). A bare delimiter byte between
// components would let values containing that byte alias across column
// boundaries ("a\x1f"+"b" vs "a"+"\x1fb"); prefixing each component with its
// decimal length makes the encoding injective over component sequences.

// AppendLengthPrefixed appends one component to dst as "<len>|<s>" and
// returns the extended buffer.
func AppendLengthPrefixed(dst []byte, s string) []byte {
	dst = strconv.AppendInt(dst, int64(len(s)), 10)
	dst = append(dst, '|')
	return append(dst, s...)
}

// AppendValueKey appends the length-prefixed grouping key of v (see
// Value.Key) to dst.
func AppendValueKey(dst []byte, v Value) []byte {
	return AppendLengthPrefixed(dst, v.Key())
}

// AppendCompositeKey appends the row's composite grouping key to dst and
// returns the extended buffer. This is the allocation-free variant of
// CompositeKey for hot loops that hash many rows: callers reuse one scratch
// buffer (typically from a sync.Pool) across rows instead of materializing a
// fresh byte slice per row.
func AppendCompositeKey(dst []byte, row Row) []byte {
	for _, v := range row {
		dst = AppendValueKey(dst, v)
	}
	return dst
}

// CompositeKey returns the concatenated length-prefixed grouping keys of the
// row's values: two rows share a composite key iff they are pairwise Key()
// equal, regardless of delimiter bytes inside string values.
func CompositeKey(row Row) string {
	return string(AppendCompositeKey(nil, row))
}
