package sqldb

// Columnar storage: a read-only, column-major snapshot of a table that the
// vectorized executor scans instead of the row-major Table.Rows. Each column
// whose non-NULL values share one Kind is decomposed into a dense typed
// array ([]int64, []float64, ...) plus a null bitmap; columns that mix kinds
// keep their boxed Values so the batch engine can still evaluate them
// lane-at-a-time with exactly the row engine's semantics. The snapshot is a
// pure function of the table contents at build time — tables are append-only
// under live executors, so callers cache a Columnar per table and rebuild
// when the row count moves.

// Bitmap is a dense bitset indexed from 0. The zero value (nil) is a valid
// empty bitmap for Get (reports false everywhere) but must be allocated with
// NewBitmap before Set.
type Bitmap []uint64

// NewBitmap returns a bitmap with capacity for n bits, all clear.
func NewBitmap(n int) Bitmap {
	return make(Bitmap, (n+63)/64)
}

// Get reports whether bit i is set. Get on a nil bitmap reports false.
func (b Bitmap) Get(i int) bool {
	w := i >> 6
	return w < len(b) && b[w]&(1<<(uint(i)&63)) != 0
}

// Set sets bit i. The bitmap must have been sized to cover i.
func (b Bitmap) Set(i int) {
	b[i>>6] |= 1 << (uint(i) & 63)
}

// Clear resets every bit.
func (b Bitmap) Clear() {
	for i := range b {
		b[i] = 0
	}
}

// ColumnData is one column of a Columnar snapshot. Exactly one backing array
// is populated, selected by Kind/Mixed:
//
//   - Mixed == false, Kind in {KindInt, KindFloat, KindString, KindBool}:
//     the matching typed array holds every row's value; rows whose bit is
//     set in Nulls are NULL and the typed slot holds the zero element.
//   - Mixed == false, Kind == KindNull: every row is NULL (no data array).
//   - Mixed == true: Values holds the original boxed values (NULLs
//     included); Nulls is nil and the typed arrays are empty.
type ColumnData struct {
	Kind   Kind
	Mixed  bool
	Ints   []int64
	Floats []float64
	Strs   []string
	Bools  []bool
	Values []Value
	Nulls  Bitmap
}

// Null reports whether row i of the column is NULL.
func (c *ColumnData) Null(i int) bool {
	if c.Mixed {
		return c.Values[i].IsNull()
	}
	if c.Kind == KindNull {
		return true
	}
	return c.Nulls.Get(i)
}

// Value re-boxes row i of the column. It is the slow accessor the batch
// engine's generic lane loops use; typed kernels read the arrays directly.
func (c *ColumnData) Value(i int) Value {
	if c.Mixed {
		return c.Values[i]
	}
	if c.Kind == KindNull || c.Nulls.Get(i) {
		return Null()
	}
	switch c.Kind {
	case KindInt:
		return Int(c.Ints[i])
	case KindFloat:
		return Float(c.Floats[i])
	case KindString:
		return Str(c.Strs[i])
	default:
		return Bool(c.Bools[i])
	}
}

// Columnar is a column-major snapshot of one table.
type Columnar struct {
	NRows int
	Cols  []ColumnData
}

// Columnarize decomposes a table into columnar form. Rows narrower than the
// schema (which the loader never produces, but defensive callers may) read
// as NULL in the missing trailing columns.
func Columnarize(t *Table) *Columnar {
	n := len(t.Rows)
	c := &Columnar{NRows: n, Cols: make([]ColumnData, len(t.Columns))}
	for ci := range t.Columns {
		c.Cols[ci] = columnarizeCol(t.Rows, ci, n)
	}
	return c
}

func columnarizeCol(rows []Row, ci, n int) ColumnData {
	// First pass: find the uniform non-NULL kind, if any.
	kind := KindNull
	mixed := false
	for _, r := range rows {
		if ci >= len(r) || r[ci].IsNull() {
			continue
		}
		k := r[ci].K
		if kind == KindNull {
			kind = k
		} else if kind != k {
			mixed = true
			break
		}
	}
	if mixed {
		vals := make([]Value, n)
		for i, r := range rows {
			if ci < len(r) {
				vals[i] = r[ci]
			}
		}
		return ColumnData{Kind: KindNull, Mixed: true, Values: vals}
	}
	col := ColumnData{Kind: kind}
	if kind == KindNull {
		return col // all-NULL column: kind carries everything
	}
	var nulls Bitmap
	setNull := func(i int) {
		if nulls == nil {
			nulls = NewBitmap(n)
		}
		nulls.Set(i)
	}
	switch kind {
	case KindInt:
		col.Ints = make([]int64, n)
		for i, r := range rows {
			if ci >= len(r) || r[ci].IsNull() {
				setNull(i)
			} else {
				col.Ints[i] = r[ci].I
			}
		}
	case KindFloat:
		col.Floats = make([]float64, n)
		for i, r := range rows {
			if ci >= len(r) || r[ci].IsNull() {
				setNull(i)
			} else {
				col.Floats[i] = r[ci].F
			}
		}
	case KindString:
		col.Strs = make([]string, n)
		for i, r := range rows {
			if ci >= len(r) || r[ci].IsNull() {
				setNull(i)
			} else {
				col.Strs[i] = r[ci].S
			}
		}
	case KindBool:
		col.Bools = make([]bool, n)
		for i, r := range rows {
			if ci >= len(r) || r[ci].IsNull() {
				setNull(i)
			} else {
				col.Bools[i] = r[ci].B
			}
		}
	}
	col.Nulls = nulls
	return col
}
