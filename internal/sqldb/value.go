// Package sqldb provides the in-memory analytical database that backs the
// GenEdit reproduction: a typed value model, tables, databases and the value
// profiling (top-k frequent values per column) the paper's pre-processing
// phase attaches to schema descriptions.
package sqldb

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the runtime value kinds.
type Kind int

// Value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "TEXT"
	case KindBool:
		return "BOOLEAN"
	}
	return "UNKNOWN"
}

// Value is a single SQL scalar. The zero Value is NULL.
type Value struct {
	K Kind
	I int64
	F float64
	S string
	B bool
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(i int64) Value { return Value{K: KindInt, I: i} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{K: KindFloat, F: f} }

// Str returns a string value.
func Str(s string) Value { return Value{K: KindString, S: s} }

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{K: KindBool, B: b} }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// IsNumeric reports whether v is an integer or float.
func (v Value) IsNumeric() bool { return v.K == KindInt || v.K == KindFloat }

// AsFloat converts v to float64. It reports false for non-numeric,
// non-parsable values.
func (v Value) AsFloat() (float64, bool) {
	switch v.K {
	case KindInt:
		return float64(v.I), true
	case KindFloat:
		return v.F, true
	case KindString:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.S), 64)
		if err != nil {
			return 0, false
		}
		return f, true
	case KindBool:
		if v.B {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

// AsInt converts v to int64, truncating floats. It reports false for
// non-numeric values.
func (v Value) AsInt() (int64, bool) {
	switch v.K {
	case KindInt:
		return v.I, true
	case KindFloat:
		return int64(v.F), true
	case KindString:
		i, err := strconv.ParseInt(strings.TrimSpace(v.S), 10, 64)
		if err != nil {
			f, ferr := strconv.ParseFloat(strings.TrimSpace(v.S), 64)
			if ferr != nil {
				return 0, false
			}
			return int64(f), true
		}
		return i, true
	case KindBool:
		if v.B {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

// String renders the value the way result rows are compared and displayed.
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return formatFloat(v.F)
	case KindString:
		return v.S
	case KindBool:
		if v.B {
			return "TRUE"
		}
		return "FALSE"
	}
	return "?"
}

// formatFloat renders floats with enough precision for equality comparison
// while keeping integral floats short ("3" not "3.000000").
func formatFloat(f float64) string {
	if math.IsInf(f, 1) {
		return "Inf"
	}
	if math.IsInf(f, -1) {
		return "-Inf"
	}
	if math.IsNaN(f) {
		return "NaN"
	}
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// Equal reports SQL equality between two non-NULL values. Comparisons with
// NULL are the caller's concern (three-valued logic); Equal treats NULL as
// equal only to NULL, which is what result-set comparison needs.
func (v Value) Equal(o Value) bool {
	c, ok := Compare(v, o)
	return ok && c == 0
}

// Compare orders two values. It reports false when the values are not
// comparable under SQL rules (for this engine: NULL against anything
// non-NULL). Numeric kinds compare numerically; bools order false < true;
// everything else compares by rendered string.
func Compare(a, b Value) (int, bool) {
	if a.IsNull() || b.IsNull() {
		if a.IsNull() && b.IsNull() {
			return 0, true
		}
		return 0, false
	}
	if a.IsNumeric() && b.IsNumeric() {
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		switch {
		case af < bf:
			return -1, true
		case af > bf:
			return 1, true
		default:
			return 0, true
		}
	}
	if a.K == KindBool && b.K == KindBool {
		switch {
		case !a.B && b.B:
			return -1, true
		case a.B && !b.B:
			return 1, true
		default:
			return 0, true
		}
	}
	as, bs := a.String(), b.String()
	switch {
	case as < bs:
		return -1, true
	case as > bs:
		return 1, true
	default:
		return 0, true
	}
}

// CompareForSort orders values for ORDER BY with NULLs sorted first, so the
// result is a total order.
func CompareForSort(a, b Value) int {
	switch {
	case a.IsNull() && b.IsNull():
		return 0
	case a.IsNull():
		return -1
	case b.IsNull():
		return 1
	}
	c, _ := Compare(a, b)
	return c
}

// Key returns a canonical string key for grouping and DISTINCT; numerically
// equal ints and floats share a key.
func (v Value) Key() string {
	switch v.K {
	case KindNull:
		return "\x00N"
	case KindInt:
		return "#" + strconv.FormatInt(v.I, 10)
	case KindFloat:
		return "#" + formatFloat(v.F)
	case KindBool:
		if v.B {
			return "b1"
		}
		return "b0"
	default:
		return "s" + v.S
	}
}

// Cast converts a value to the named SQL type. Unknown types pass through
// unchanged, matching permissive warehouse behaviour.
func Cast(v Value, typ string) (Value, error) {
	if v.IsNull() {
		return Null(), nil
	}
	switch normalizeType(typ) {
	case "INTEGER":
		i, ok := v.AsInt()
		if !ok {
			return Null(), fmt.Errorf("cannot cast %q to INTEGER", v.String())
		}
		return Int(i), nil
	case "FLOAT":
		f, ok := v.AsFloat()
		if !ok {
			return Null(), fmt.Errorf("cannot cast %q to FLOAT", v.String())
		}
		return Float(f), nil
	case "TEXT":
		return Str(v.String()), nil
	case "BOOLEAN":
		switch v.K {
		case KindBool:
			return v, nil
		case KindInt:
			return Bool(v.I != 0), nil
		case KindFloat:
			return Bool(v.F != 0), nil
		default:
			s := strings.ToUpper(strings.TrimSpace(v.S))
			if s == "TRUE" || s == "1" {
				return Bool(true), nil
			}
			if s == "FALSE" || s == "0" {
				return Bool(false), nil
			}
			return Null(), fmt.Errorf("cannot cast %q to BOOLEAN", v.String())
		}
	default:
		return v, nil
	}
}

// normalizeType maps dialect spellings onto the engine's canonical types.
func normalizeType(typ string) string {
	switch strings.ToUpper(strings.Fields(typ)[0]) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT", "TINYINT":
		return "INTEGER"
	case "FLOAT", "REAL", "DOUBLE", "DECIMAL", "NUMERIC", "NUMBER":
		return "FLOAT"
	case "TEXT", "VARCHAR", "CHAR", "STRING", "NVARCHAR", "DATE", "TIMESTAMP":
		return "TEXT"
	case "BOOLEAN", "BOOL":
		return "BOOLEAN"
	default:
		return strings.ToUpper(typ)
	}
}
