package sqldb

import (
	"testing"
)

func sampleTable() *Table {
	t := NewTable("ORDERS",
		Column{Name: "ID", Type: "INTEGER"},
		Column{Name: "REGION", Type: "TEXT"},
		Column{Name: "AMOUNT", Type: "FLOAT"},
	)
	rows := []struct {
		id     int64
		region string
		amount float64
	}{
		{1, "east", 10}, {2, "west", 20}, {3, "east", 30},
		{4, "east", 40}, {5, "north", 50}, {6, "west", 60},
	}
	for _, r := range rows {
		t.MustAppend(Int(r.id), Str(r.region), Float(r.amount))
	}
	return t
}

func TestColumnIndexCaseInsensitive(t *testing.T) {
	tbl := sampleTable()
	if got := tbl.ColumnIndex("region"); got != 1 {
		t.Errorf("ColumnIndex(region) = %d, want 1", got)
	}
	if got := tbl.ColumnIndex("MISSING"); got != -1 {
		t.Errorf("ColumnIndex(MISSING) = %d, want -1", got)
	}
}

func TestAppendArity(t *testing.T) {
	tbl := sampleTable()
	if err := tbl.Append(Int(9)); err == nil {
		t.Error("Append with wrong arity should fail")
	}
}

func TestTopValues(t *testing.T) {
	tbl := sampleTable()
	top := tbl.TopValues("REGION", 2)
	if len(top) != 2 {
		t.Fatalf("TopValues returned %d values, want 2", len(top))
	}
	if top[0].S != "east" {
		t.Errorf("most frequent = %v, want east (3 occurrences)", top[0])
	}
	if top[1].S != "west" {
		t.Errorf("second = %v, want west (2 occurrences)", top[1])
	}
}

func TestTopValuesSkipsNulls(t *testing.T) {
	tbl := NewTable("T", Column{Name: "X", Type: "TEXT"})
	tbl.MustAppend(Null())
	tbl.MustAppend(Null())
	tbl.MustAppend(Str("a"))
	top := tbl.TopValues("X", 5)
	if len(top) != 1 || top[0].S != "a" {
		t.Errorf("TopValues = %v, want just [a]", top)
	}
}

func TestTopValuesTieBreakDeterministic(t *testing.T) {
	tbl := NewTable("T", Column{Name: "X", Type: "TEXT"})
	for _, s := range []string{"b", "a", "c"} {
		tbl.MustAppend(Str(s))
	}
	top := tbl.TopValues("X", 3)
	if top[0].S != "a" || top[1].S != "b" || top[2].S != "c" {
		t.Errorf("tie break not by value order: %v", top)
	}
}

func TestDatabaseRegistry(t *testing.T) {
	db := NewDatabase("testdb")
	db.AddTable(sampleTable())
	db.AddTable(NewTable("USERS", Column{Name: "ID", Type: "INTEGER"}))

	if db.Table("orders") == nil {
		t.Error("case-insensitive lookup failed")
	}
	if db.Table("nope") != nil {
		t.Error("missing table should be nil")
	}
	names := db.TableNames()
	if len(names) != 2 || names[0] != "ORDERS" || names[1] != "USERS" {
		t.Errorf("TableNames = %v, want registration order", names)
	}

	// Replacement keeps order, swaps contents.
	replacement := NewTable("ORDERS", Column{Name: "ONLY", Type: "TEXT"})
	db.AddTable(replacement)
	if len(db.Tables()) != 2 {
		t.Errorf("replacement changed table count: %d", len(db.Tables()))
	}
	if db.Table("ORDERS") != replacement {
		t.Error("replacement did not take effect")
	}
}

func TestRowClone(t *testing.T) {
	r := Row{Int(1), Str("x")}
	c := r.Clone()
	c[0] = Int(2)
	if r[0].I != 1 {
		t.Error("Clone shares backing storage")
	}
}
