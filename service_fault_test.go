package genedit_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"genedit"
	"genedit/internal/eval"
	"genedit/internal/feedback"
	"genedit/internal/kstore"
)

// faultyFeedbackRound is runFeedbackRound's fault-tolerant sibling: store
// I/O may fail mid-round, so approval errors are recorded instead of
// fatal. It returns the knowledge version of the last approval the service
// ACKNOWLEDGED — the durability floor recovery is measured against — and
// whether any injected fault surfaced.
func faultyFeedbackRound(t *testing.T, svc *genedit.Service, suite *genedit.Benchmark) (ackedVersion int, faulted bool) {
	t.Helper()
	ctx := context.Background()
	runner := eval.NewRunner(suite.Databases)
	sme := feedback.NewSimulatedSME(7)

	solver, err := svc.Solver(ctx, storeDB, goldenOf(suite))
	if err != nil {
		if errors.Is(err, kstore.ErrInjected) {
			return 0, true
		}
		t.Fatal(err)
	}
	for _, c := range dbCases(suite) {
		resp, err := svc.Generate(ctx, genedit.Request{Database: storeDB, Question: c.Question, Evidence: c.Evidence})
		if err != nil {
			t.Fatal(err)
		}
		if ok, err := runner.Evaluate(c, resp.SQL); err != nil || ok {
			continue
		}
		sess, err := solver.OpenContext(ctx, c.Question, c.Evidence)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := sess.Feedback(sme.FeedbackFor(c, sess.Record))
		if err != nil {
			t.Fatal(err)
		}
		staged, _ := sme.ReviewEdits(c, rec.Edits)
		sess.Stage(staged...)
		regen, err := sess.RegenerateContext(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if fixed, err := runner.Evaluate(c, regen.FinalSQL); err != nil || !fixed {
			continue
		}
		res, err := sess.SubmitContext(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Passed {
			continue
		}
		if err := solver.Approve(res.Pending, "reviewer"); err != nil {
			// The merge hook commits to the store BEFORE hot-swapping the
			// engine: a failed approval must leave the served version
			// unchanged, never acknowledge-and-lose.
			if !errors.Is(err, kstore.ErrInjected) && !isStoreWedged(err) {
				t.Fatalf("approve failed with a non-injected error: %v", err)
			}
			faulted = true
			continue
		}
		info, err := svc.Knowledge(ctx, storeDB, 0)
		if err != nil {
			t.Fatal(err)
		}
		ackedVersion = info.Version
	}
	return ackedVersion, faulted
}

// isStoreWedged matches the store's fail-fast errors caused by an earlier
// injected fault (broken rollback, closed WAL handle).
func isStoreWedged(err error) bool {
	return err != nil && (errors.Is(err, kstore.ErrClosed) ||
		containsStr(err.Error(), "store is failed") ||
		containsStr(err.Error(), "file already closed") ||
		containsStr(err.Error(), "diverged from the durable log"))
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestServiceSurvivesStoreFaults sweeps injected store failures — clean
// errors and mid-syscall crashes at varied operation points — across a
// live feedback round, then restarts the service over the surviving disk
// state and asserts the serving-layer durability contract: no acknowledged
// approval is lost, and the recovered service's generations are
// bit-identical to an in-memory reference holding the same knowledge
// version (EX parity).
func TestServiceSurvivesStoreFaults(t *testing.T) {
	suite := genedit.NewBenchmark(1)
	ctx := context.Background()

	// Sweep-level sanity: at least one run must actually hit a fault and at
	// least one must acknowledge an approval, or the sweep proves nothing.
	var sawFault, sawAck bool

	for _, kind := range []kstore.Fault{kstore.FaultErr, kstore.FaultCrash} {
		for _, faultOp := range []int64{2, 8, 15, 27, 40} {
			t.Run(fmt.Sprintf("%s-op%d", kind, faultOp), func(t *testing.T) {
				dir := t.TempDir()
				ffs := kstore.NewFaultFS(kstore.OSFS)
				ffs.PlanFault(faultOp, kind)

				svc := genedit.NewService(genedit.NewBenchmark(1),
					genedit.WithModelSeed(42),
					genedit.WithStorePath(dir),
					genedit.WithStoreFS(ffs),
				)
				acked, faulted := faultyFeedbackRound(t, svc, suite)
				if ffs.Injected() > 0 {
					faulted = true
				}
				sawFault = sawFault || faulted
				sawAck = sawAck || acked > 0
				svc.Close() // post-crash close errors are expected

				// Restart over the surviving disk through a clean filesystem.
				rec := genedit.NewService(genedit.NewBenchmark(1),
					genedit.WithModelSeed(42),
					genedit.WithStorePath(dir),
				)
				defer rec.Close()
				info, err := rec.Knowledge(ctx, storeDB, 0)
				if err != nil {
					t.Fatalf("recovered service knowledge: %v", err)
				}
				if info.Version < acked {
					t.Fatalf("EVENT LOSS: acknowledged version %d, recovered %d", acked, info.Version)
				}

				// EX parity: an in-memory service replayed to the same
				// version must generate identical SQL for every case. The
				// recovered version may exceed acked (a commit can land
				// durably even when its acknowledgement path faulted); parity
				// is asserted at whatever version actually recovered.
				mem := genedit.NewService(genedit.NewBenchmark(1), genedit.WithModelSeed(42))
				replayFeedbackToVersion(t, mem, suite, info.Version)
				for _, c := range dbCases(suite) {
					want, err := mem.Generate(ctx, genedit.Request{Database: storeDB, Question: c.Question, Evidence: c.Evidence})
					if err != nil {
						t.Fatal(err)
					}
					got, err := rec.Generate(ctx, genedit.Request{Database: storeDB, Question: c.Question, Evidence: c.Evidence})
					if err != nil {
						t.Fatal(err)
					}
					if got.SQL != want.SQL || got.OK != want.OK {
						t.Fatalf("case %s: recovered SQL %q (ok=%v) != reference %q (ok=%v)",
							c.ID, got.SQL, got.OK, want.SQL, want.OK)
					}
				}
			})
		}
	}
	if !sawFault {
		t.Fatal("no injected fault ever fired: the sweep exercised nothing")
	}
	if !sawAck {
		t.Fatal("no approval was ever acknowledged: the durability floor was never tested")
	}
}

// replayFeedbackToVersion drives the deterministic feedback round against
// an in-memory service, stopping once the knowledge version reaches
// target. The round is seed-fixed, so approvals land in the same order as
// the faulted run's successful ones.
func replayFeedbackToVersion(t *testing.T, svc *genedit.Service, suite *genedit.Benchmark, target int) {
	t.Helper()
	ctx := context.Background()
	if target == 0 {
		return
	}
	runner := eval.NewRunner(suite.Databases)
	sme := feedback.NewSimulatedSME(7)
	solver, err := svc.Solver(ctx, storeDB, goldenOf(suite))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range dbCases(suite) {
		info, err := svc.Knowledge(ctx, storeDB, 0)
		if err != nil {
			t.Fatal(err)
		}
		if info.Version >= target {
			return
		}
		resp, err := svc.Generate(ctx, genedit.Request{Database: storeDB, Question: c.Question, Evidence: c.Evidence})
		if err != nil {
			t.Fatal(err)
		}
		if ok, err := runner.Evaluate(c, resp.SQL); err != nil || ok {
			continue
		}
		sess, err := solver.OpenContext(ctx, c.Question, c.Evidence)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := sess.Feedback(sme.FeedbackFor(c, sess.Record))
		if err != nil {
			t.Fatal(err)
		}
		staged, _ := sme.ReviewEdits(c, rec.Edits)
		sess.Stage(staged...)
		regen, err := sess.RegenerateContext(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if fixed, err := runner.Evaluate(c, regen.FinalSQL); err != nil || !fixed {
			continue
		}
		res, err := sess.SubmitContext(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if res.Passed {
			if err := solver.Approve(res.Pending, "reviewer"); err != nil {
				t.Fatal(err)
			}
		}
	}
	info, err := svc.Knowledge(ctx, storeDB, 0)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version < target {
		t.Fatalf("reference replay reached version %d, target %d", info.Version, target)
	}
}
