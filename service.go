package genedit

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"genedit/internal/admission"
	"genedit/internal/eval"
	"genedit/internal/feedback"
	"genedit/internal/gencache"
	"genedit/internal/generr"
	"genedit/internal/knowledge"
	"genedit/internal/kstore"
	"genedit/internal/metrics"
	"genedit/internal/pipeline"
	"genedit/internal/simllm"
)

// Typed error taxonomy. Callers branch with errors.Is; the wrapped errors
// carry the specifics (database name, underlying ctx.Err(), parser message).
var (
	// ErrUnknownDatabase reports a Request naming a database the benchmark
	// does not contain.
	ErrUnknownDatabase = errors.New("genedit: unknown database")
	// ErrCanceled reports that the caller's context was canceled or its
	// deadline expired mid-pipeline. Matching errors also satisfy
	// errors.Is(err, context.Canceled) or context.DeadlineExceeded.
	ErrCanceled = generr.ErrCanceled
	// ErrSyntaxFailure / ErrExecFailure classify a *GenerationError (the
	// Response.Failure field): the final SQL failed to parse vs. failed
	// semantic execution.
	ErrSyntaxFailure = pipeline.ErrSyntaxFailure
	ErrExecFailure   = pipeline.ErrExecFailure
	// ErrRateLimited reports that admission control (WithAdmission) shed
	// the request because its tenant exhausted its token-bucket budget.
	// Serving layers map it to 429; generr.RetryAfterHint extracts the
	// Retry-After estimate.
	ErrRateLimited = generr.ErrRateLimited
	// ErrOverloaded reports that admission control shed the request for
	// capacity reasons: the queue is full, the request could not start
	// before its deadline, or the service is shutting down. Maps to 503.
	ErrOverloaded = generr.ErrOverloaded
)

// GenerationError reports a generation whose best candidate SQL still
// failed; see Response.Failure.
type GenerationError = pipeline.GenerationError

// Trace types for the per-request timing hook (WithTrace / WithTraceContext).
type (
	// Trace is one request's per-operator timing report.
	Trace = pipeline.Trace
	// OpTiming is one operator's wall-clock duration within a request.
	OpTiming = pipeline.OpTiming
	// TraceFunc observes a request's Trace; it must be concurrency-safe.
	TraceFunc = pipeline.TraceFunc
)

// WithTraceContext attaches a per-request trace hook to ctx, overriding any
// service-level WithTrace hook for that request.
func WithTraceContext(ctx context.Context, fn TraceFunc) context.Context {
	return pipeline.WithTrace(ctx, fn)
}

// Request is one generation job for Service.Generate / GenerateBatch.
type Request struct {
	// Database selects the tenant: each benchmark database is a separate
	// "company" with its own knowledge set and engine.
	Database string
	// Question is the natural-language question.
	Question string
	// Evidence is optional benchmark-provided external knowledge.
	Evidence string
}

// Response is the outcome of one Request.
type Response struct {
	Database string
	// Record is the full generation trace (context, plan, attempts).
	Record *Record
	// SQL is the final SQL (Record.FinalSQL), kept flat for serving.
	SQL string
	// OK reports whether SQL executed without error.
	OK bool
	// Failure classifies an unsuccessful generation (syntax vs. exec);
	// nil when OK.
	Failure *GenerationError
	// Err is set only by GenerateBatch for per-request failures (unknown
	// database, cancellation, operator error); Generate returns these
	// directly instead.
	Err error
	// Cached reports that Record came from the generation cache (an LRU hit
	// or a coalesced in-flight generation) rather than a pipeline run by
	// this request. Always false when the cache is disabled.
	Cached bool
	// Stale reports graceful degradation: admission control shed this
	// request, but a cached record from a previous knowledge version
	// existed, so the service served that instead of failing with
	// ErrRateLimited/ErrOverloaded. StaleVersion is the knowledge version
	// the record was generated at (the live version is strictly newer, or
	// the same if the entry simply predates the shed). Stale implies
	// Cached.
	Stale        bool
	StaleVersion int
	// Duration is the request's wall-clock time, including any engine
	// build it had to wait for.
	Duration time.Duration
}

// Option configures a Service.
type Option func(*Service)

// WithConfig sets the pipeline configuration for every engine the service
// builds (default DefaultConfig).
func WithConfig(cfg Config) Option { return func(s *Service) { s.cfg = cfg } }

// WithModelSeed seeds the simulated model's deterministic draws (default 42,
// the seed every committed exhibit uses).
func WithModelSeed(seed uint64) Option { return func(s *Service) { s.modelSeed = seed } }

// WithWorkers bounds GenerateBatch's worker pool. Values below 1 are clamped
// to 1; the default is GOMAXPROCS.
func WithWorkers(n int) Option {
	return func(s *Service) {
		if n < 1 {
			n = 1
		}
		s.workers = n
	}
}

// WithStatementCacheSize bounds each engine's parsed-statement LRU (default
// sqlexec.DefaultStatementCacheSize = 512). Serving deployments whose hot
// SQL set exceeds the default raise it here.
func WithStatementCacheSize(n int) Option {
	return func(s *Service) { s.stmtCacheSize = n }
}

// WithBatchExec enables or disables the columnar batch executor in every
// engine the service builds (enabled by default). The batch engine is
// bit-identical to the row path by contract, so the switch never changes
// results — it exists for debugging and for apples-to-apples performance
// comparisons against the compiled row engine.
//
// Concurrency: batch plans are immutable once compiled (stateless kernels
// over a point-in-time columnar snapshot) and are shared across concurrent
// Generate / GenerateBatch workers exactly like compiled row plans; the
// statement cache synchronizes plan installation internally. Each query
// fans its morsels out over up to runtime.GOMAXPROCS workers.
func WithBatchExec(enabled bool) Option {
	return func(s *Service) {
		s.batchExecSet = true
		s.batchExec = enabled
	}
}

// ANNRetrieval tunes the partitioned retrieval index every engine builds
// over its knowledge set (see internal/embed): a deterministic IVF-style
// clustering searched best-partition-first with an exactness guard, so
// top-k results are always order-identical to the brute-force scan.
type ANNRetrieval struct {
	// Disable forces every retrieval through the plain full scan.
	Disable bool
	// MinSize is the minimum index size before partitioning kicks in
	// (0 = embed.DefaultANNMinSize). Small knowledge sets stay on the scan
	// path, where partitioning overhead exceeds the savings.
	MinSize int
	// Probes is the number of best-ranked partitions scanned before the
	// exactness guard decides whether more are needed
	// (0 = embed.DefaultANNProbes).
	Probes int
}

// WithANNRetrieval overrides the ANN retrieval tuning in every engine the
// service builds (enabled with defaults otherwise). Like WithBatchExec this
// never changes results — the ANN layer is exact by construction — so the
// knob exists for debugging and brute-vs-ANN comparisons.
func WithANNRetrieval(cfg ANNRetrieval) Option {
	return func(s *Service) {
		s.annSet = true
		s.ann = cfg
	}
}

// WithRetrievalFanout overrides the example / instruction retrieval
// fan-outs — how many candidates each selector pulls from its index before
// intent filtering and re-ranking. Values <= 0 keep the defaults
// (pipeline.DefaultExampleFanout / pipeline.DefaultInstructionFanout, the
// paper configuration). Raising the fan-outs trades retrieval latency for
// re-ranking quality headroom on large knowledge sets; lowering them is an
// ablation knob. Fan-outs change which candidates reach the re-ranker, so —
// unlike WithANNRetrieval — non-default values can change generated SQL.
func WithRetrievalFanout(examples, instructions int) Option {
	return func(s *Service) {
		s.fanoutSet = true
		s.exFanout = examples
		s.insFanout = instructions
	}
}

// WithGenerationCache enables the versioned generation cache: a bounded LRU
// of completed Records keyed by (database, knowledge version, normalized
// question, evidence), with singleflight coalescing so concurrent identical
// requests share one pipeline run. Enterprise traffic is highly repetitive —
// the same questions recur across users — so the hit path skips the whole
// compounding-operator pipeline.
//
// Hot-swap safety comes from the key, not from flushing: an approved merge
// installs an engine whose knowledge version is strictly greater, so
// post-swap requests compute new keys and always regenerate; stale entries
// age out of the LRU. Requests carrying a trace hook bypass the cache (a
// per-operator timing trace requires an actual pipeline run), and errors are
// never cached.
//
// size <= 0 disables the cache (the default), reproducing uncached serving
// behavior exactly. Cached Records are shared across responses and must be
// treated as read-only, which serving code already assumes.
func WithGenerationCache(size int) Option {
	return func(s *Service) { s.genCacheSize = size }
}

// AdmissionConfig bounds the serving path (WithAdmission): per-tenant
// token-bucket rate limiting and a bounded, deadline-aware request queue in
// front of the generation pipeline.
type AdmissionConfig struct {
	// RatePerSec is each tenant's (database's) token refill rate — one
	// token per request. <= 0 disables rate limiting.
	RatePerSec float64
	// Burst is each tenant's bucket capacity (defaults to
	// max(1, RatePerSec)).
	Burst float64
	// MaxConcurrent bounds concurrently executing generations; <= 0
	// disables the concurrency gate.
	MaxConcurrent int
	// MaxQueue bounds requests waiting for a slot; arrivals beyond it are
	// shed with ErrOverloaded. <= 0 means no queue: a full house sheds
	// instantly.
	MaxQueue int
	// DisableStaleServe turns off graceful degradation. By default a shed
	// request is answered with the newest cached record for its question
	// from ANY knowledge version when one exists (Response.Stale), on the
	// theory that a slightly stale answer beats a 429/503 for read
	// traffic. Requires WithGenerationCache to have an effect.
	DisableStaleServe bool
}

// WithAdmission puts admission control on the serving path: every Generate
// (and each GenerateBatch item) must pass a per-tenant token bucket and a
// bounded, deadline-aware queue before any pipeline work runs. Shed
// requests fail fast with ErrRateLimited / ErrOverloaded (both carrying a
// Retry-After hint via generr.RetryAfterHint) — or, when the generation
// cache holds an answer for the question from a previous knowledge version,
// degrade gracefully onto it (Response.Stale).
//
// Deadline awareness: a request whose context deadline cannot be met given
// the current queue depth and the observed service-time average is shed at
// arrival instead of queued to die — the queue only ever holds requests
// that can still make their deadlines.
func WithAdmission(cfg AdmissionConfig) Option {
	return func(s *Service) { s.admCfg = &cfg }
}

// Handler serves one generation request; it is the unit the service's
// middleware stack composes. The innermost handler runs the pipeline; the
// built-in stack wraps it as admit → coalesce → generate.
type Handler func(ctx context.Context, req Request) (*Response, error)

// Middleware wraps a Handler with a cross-cutting concern (admission,
// caching, custom instrumentation).
type Middleware func(Handler) Handler

// WithMiddleware installs custom middleware outside the built-in stack:
// user middleware sees every request before admission control does (and
// after it on the way out). Middleware runs in the order given, first
// outermost. Handlers must be safe for concurrent use.
func WithMiddleware(mw ...Middleware) Option {
	return func(s *Service) { s.userMW = append(s.userMW, mw...) }
}

// WithTrace installs a service-level per-request trace hook: fn receives
// per-operator timings for every Generate / GenerateBatch request. A hook
// attached to a request's ctx via WithTraceContext takes precedence for
// that request. fn must be safe for concurrent use.
func WithTrace(fn TraceFunc) Option { return func(s *Service) { s.trace = fn } }

// WithStorePath makes the service durable: each database's knowledge set is
// backed by a crash-safe kstore (WAL + snapshots) under dir/<database>. On
// first use of a database the store is empty, so the service seed-builds
// the knowledge set from the benchmark's pre-processing inputs and persists
// it; on later opens — including after a crash or restart — the set is
// recovered from disk with its full version, audit history and checkpoints,
// and the seed build is skipped. Edits merged through Service.Solver are
// fsynced to the store before the serving engine hot-swaps, so an
// acknowledged approval survives a kill -9.
//
// A store directory assumes a single writing process; run one service per
// store path. Call Close to release the stores.
func WithStorePath(dir string) Option { return func(s *Service) { s.storePath = dir } }

// WithStoreFS routes the knowledge stores' filesystem I/O through fs
// (default the real filesystem). Durability tests pass a kstore.FaultFS to
// inject fsync failures, torn writes and crashes under live serving and
// verify that acknowledged approvals survive.
func WithStoreFS(fs kstore.FS) Option { return func(s *Service) { s.storeFS = fs } }

// Service is the long-lived, multi-tenant serving facade over the GenEdit
// pipeline. It lazily builds one shared Engine per database — the expensive
// pre-processing phase (knowledge-set construction + retrieval-index build)
// runs at most once per database, with duplicate concurrent builds coalesced
// — and serves concurrent Generate and GenerateBatch calls against those
// shared engines.
//
// Concurrency contract: all Service methods are safe for concurrent use.
// Engines are immutable once built (see pipeline.Engine), so requests never
// contend on anything but the executor's internal sharded statement-cache
// locks. The registry is guarded by an RWMutex: steady-state Generate calls
// take only the read lock (and only briefly, to fetch a resolved promise),
// so they never serialize behind engine builds, store opens or hot-swap
// publications, which take the write lock. Approved feedback merges never
// mutate a served engine: the solver's merge hook swaps a freshly built
// engine into the registry atomically (swapEngine), so a request sees
// either the old or the new knowledge version, never a half-rebuilt one.
type Service struct {
	suite         *Benchmark
	cfg           Config
	modelSeed     uint64
	workers       int
	stmtCacheSize int
	batchExecSet  bool
	batchExec     bool
	annSet        bool
	ann           ANNRetrieval
	fanoutSet     bool
	exFanout      int
	insFanout     int
	genCacheSize  int
	trace         TraceFunc
	storePath     string
	storeFS       kstore.FS

	// gencache is nil when the generation cache is disabled.
	gencache *gencache.Cache

	// Admission control (nil when WithAdmission is absent), the composed
	// request chain, and any user-supplied middleware.
	admCfg    *AdmissionConfig
	admission *admission.Controller
	userMW    []Middleware
	serve     Handler

	// Metrics (see metrics.go): the registry sink (metrics.Default() unless
	// WithMetrics overrode it), the resolved instrument set, and the
	// operator-timing sampling state (WithOperatorSampling).
	mreg          *metrics.Registry
	smetrics      *serviceMetrics
	opSampleEvery int
	opSampleN     atomic.Uint64

	mu      sync.RWMutex
	engines map[string]*enginePromise
	// stores holds the open kstore per database when WithStorePath is set.
	stores map[string]*kstore.Store
	closed bool

	// Background failure mining (see miner.go). minerCfg is nil unless
	// WithMiner enabled it; failures accumulates per-db failure counters
	// (always) and retained failed records (miner only); miners holds the
	// lazily built per-db miner.
	minerCfg *MinerConfig
	failMu   sync.Mutex
	failures map[string]*dbFailures
	miners   map[string]*minerState
}

// enginePromise coalesces concurrent builds of one database's engine: the
// first requester builds, everyone else waits on ready.
type enginePromise struct {
	ready  chan struct{}
	engine *Engine
	err    error
}

// NewService wraps a benchmark suite in a serving facade. The suite is the
// tenant registry: every database it contains is servable. No engines are
// built until first use; use Prewarm to front-load builds.
func NewService(b *Benchmark, opts ...Option) *Service {
	s := &Service{
		suite:     b,
		cfg:       DefaultConfig(),
		modelSeed: 42,
		workers:   runtime.GOMAXPROCS(0),
		engines:   make(map[string]*enginePromise),
		stores:    make(map[string]*kstore.Store),
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.genCacheSize > 0 {
		s.gencache = gencache.New(s.genCacheSize)
	}
	if s.admCfg != nil {
		s.admission = admission.New(admission.Config{
			RatePerSec:    s.admCfg.RatePerSec,
			Burst:         s.admCfg.Burst,
			MaxConcurrent: s.admCfg.MaxConcurrent,
			MaxQueue:      s.admCfg.MaxQueue,
		})
	}
	s.initMetrics()
	// The request path is a middleware stack composed once at construction:
	// user middleware → admit → coalesce → generate.
	s.serve = s.generateHandler()
	s.serve = s.coalesceMiddleware(s.serve)
	s.serve = s.admitMiddleware(s.serve)
	for i := len(s.userMW) - 1; i >= 0; i-- {
		s.serve = s.userMW[i](s.serve)
	}
	return s
}

// Databases lists the servable tenants in sorted order.
func (s *Service) Databases() []string {
	names := make([]string, 0, len(s.suite.Databases))
	for name := range s.suite.Databases {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Engine returns the shared engine for one database, building it on first
// use. Concurrent callers for the same database coalesce onto a single
// build; waiters honor ctx cancellation (the build itself runs to completion
// and is cached for the next caller). The returned engine is shared — treat
// it as read-only and use WithKnowledge for staging variants.
func (s *Service) Engine(ctx context.Context, db string) (*Engine, error) {
	if _, ok := s.suite.Databases[db]; !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDatabase, db)
	}
	// Steady state is a read-locked map lookup of an already-resolved
	// promise; only the first request for a database takes the write lock.
	s.mu.RLock()
	p, ok := s.engines[db]
	s.mu.RUnlock()
	if !ok {
		s.mu.Lock()
		if p, ok = s.engines[db]; !ok {
			p = &enginePromise{ready: make(chan struct{})}
			s.engines[db] = p
			s.mu.Unlock()
			// The cleanup is deferred so even a panicking build (recovered by
			// e.g. net/http handlers) cannot leave waiters blocked forever on
			// an unresolved promise: the promise resolves as failed and is
			// evicted for retry.
			defer func() {
				if p.err != nil || p.engine == nil {
					if p.err == nil {
						p.err = fmt.Errorf("genedit: engine build for %q panicked", db)
					}
					s.mu.Lock()
					delete(s.engines, db)
					s.mu.Unlock()
				}
				close(p.ready)
			}()
			p.engine, p.err = s.build(db)
			return p.engine, p.err
		}
		s.mu.Unlock()
	}
	select {
	case <-p.ready:
		return p.engine, p.err
	case <-ctx.Done():
		return nil, generr.Canceled(ctx.Err())
	}
}

// build runs the pre-processing phase for one database — or, when the
// service is durable and the database's store already holds state, recovers
// the knowledge set from disk instead and skips the seed build.
func (s *Service) build(db string) (*Engine, error) {
	kset, err := s.buildKnowledge(db)
	if err != nil {
		return nil, err
	}
	cfg := s.cfg
	if s.stmtCacheSize > 0 {
		cfg.StatementCacheSize = s.stmtCacheSize
	}
	if s.batchExecSet {
		cfg.DisableBatchExec = !s.batchExec
	}
	if s.annSet {
		cfg.DisableANNRetrieval = s.ann.Disable
		cfg.ANNMinSize = s.ann.MinSize
		cfg.ANNProbes = s.ann.Probes
	}
	if s.fanoutSet {
		cfg.ExampleFanout = s.exFanout
		cfg.InstructionFanout = s.insFanout
	}
	model := simllm.New(simllm.GenEditProfile(), s.suite.Registry, s.modelSeed)
	return pipeline.New(model, kset, s.suite.Databases[db], cfg), nil
}

// buildKnowledge resolves the knowledge set for one database: straight from
// the pre-processing inputs when the service is in-memory, through the
// durable store when WithStorePath is set.
func (s *Service) buildKnowledge(db string) (*knowledge.Set, error) {
	if s.storePath == "" {
		return s.suite.BuildKnowledge(db)
	}
	store, err := s.openStore(db)
	if err != nil {
		return nil, err
	}
	if store.Empty() {
		// First open: seed-build and persist. The seed goes straight to a
		// snapshot (plus an empty WAL), so restarts load one file instead
		// of replaying hundreds of build events.
		kset, err := s.suite.BuildKnowledge(db)
		if err != nil {
			return nil, err
		}
		if err := store.Compact(kset); err != nil {
			return nil, fmt.Errorf("genedit: persisting seed knowledge for %q: %w", db, err)
		}
		return kset, nil
	}
	// Recovery path. The Open-time set is handed out once; if it is gone
	// or stale relative to the log — a previous build attempt appended
	// events after Open and then failed partway (e.g. the seed snapshot
	// errored after its WAL append) — re-read the store from disk rather
	// than serving an out-of-date set.
	if kset := store.Recovered(); kset != nil && kset.LastSeq() == store.LastSeq() {
		return kset, nil
	}
	store, err = s.reopenStore(db)
	if err != nil {
		return nil, err
	}
	if kset := store.Recovered(); kset != nil {
		return kset, nil
	}
	return nil, fmt.Errorf("genedit: knowledge store for %q yielded no recovered set", db)
}

// reopenStore closes and reopens a database's store, forcing recovery from
// disk.
func (s *Service) reopenStore(db string) (*kstore.Store, error) {
	s.mu.Lock()
	if st, ok := s.stores[db]; ok {
		st.Close()
		delete(s.stores, db)
	}
	s.mu.Unlock()
	return s.openStore(db)
}

// openStore opens (once) the kstore for a database.
func (s *Service) openStore(db string) (*kstore.Store, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("genedit: service is closed")
	}
	if st, ok := s.stores[db]; ok {
		return st, nil
	}
	var kopts []kstore.Option
	if s.storeFS != nil {
		kopts = append(kopts, kstore.WithFS(s.storeFS))
	}
	kopts = append(kopts, kstore.WithMetrics(s.mreg, db))
	st, err := kstore.Open(filepath.Join(s.storePath, db), kopts...)
	if err != nil {
		return nil, fmt.Errorf("genedit: opening knowledge store for %q: %w", db, err)
	}
	s.stores[db] = st
	return st, nil
}

// store returns the open store for a database, or nil for in-memory mode.
func (s *Service) store(db string) *kstore.Store {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.stores[db]
}

// swapEngine atomically replaces the served engine for a database under the
// registry lock. In-flight requests keep the engine (and its immutable
// knowledge snapshot) they resolved earlier; requests arriving after the
// swap see the new one. The promise is pre-resolved, so waiters never
// block.
func (s *Service) swapEngine(db string, engine *Engine) {
	p := &enginePromise{ready: make(chan struct{}), engine: engine}
	close(p.ready)
	s.mu.Lock()
	s.engines[db] = p
	s.mu.Unlock()
}

// Close releases the service's durable stores (no-op for an in-memory
// service). When admission control is enabled its queue is shed first —
// queued requests fail with ErrOverloaded and new requests are refused —
// so stores close with no generation about to start. In-flight generations
// are unaffected — engines are pure in-memory structures — but subsequent
// approvals will fail to persist.
func (s *Service) Close() error {
	if s.admission != nil {
		s.admission.Close()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var errs []error
	for db, st := range s.stores {
		if err := st.Close(); err != nil {
			errs = append(errs, fmt.Errorf("closing store %q: %w", db, err))
		}
	}
	return errors.Join(errs...)
}

// Prewarm builds the engines for the given databases (all servable
// databases when none are named), fanning out across the worker pool. It
// returns the first build error; ctx cancellation aborts waiting.
func (s *Service) Prewarm(ctx context.Context, dbs ...string) error {
	if len(dbs) == 0 {
		dbs = s.Databases()
	}
	errs := make([]error, len(dbs))
	eval.ForEach(ctx, s.workers, len(dbs), func(i int) {
		_, errs[i] = s.Engine(ctx, dbs[i])
	})
	if err := generr.FromContext(ctx); err != nil {
		return err
	}
	return errors.Join(errs...)
}

// Generate serves one request against the shared engine for its database.
// The error taxonomy: ErrUnknownDatabase for an unregistered tenant,
// ErrCanceled (also matching the ctx error) for mid-pipeline cancellation,
// and operator errors verbatim. A request whose final SQL failed is NOT an
// error — the Response carries a typed Failure instead, so serving layers
// distinguish "the model produced bad SQL" from "the service broke".
//
// With WithGenerationCache enabled, a request whose (database, knowledge
// version, normalized question, evidence) key has a completed Record is
// served from the cache, and concurrent identical requests coalesce onto
// one pipeline run; Response.Cached reports which path served the request.
// Requests carrying a trace hook (WithTrace or WithTraceContext) bypass the
// cache — the hook's contract is per-operator timings of an actual run.
func (s *Service) Generate(ctx context.Context, req Request) (*Response, error) {
	start := time.Now()
	if err := generr.FromContext(ctx); err != nil {
		if _, ok := s.suite.Databases[req.Database]; ok {
			s.noteCanceled(req.Database)
			s.observeRequest(req.Database, nil, err, 0)
		}
		return nil, err
	}
	// The tenant check runs before the chain so admission never builds
	// state (token buckets, queue slots) for garbage database names — and
	// so metrics never mint label values from them.
	if _, ok := s.suite.Databases[req.Database]; !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDatabase, req.Database)
	}
	ctx = s.maybeTraceContext(ctx)
	resp, err := s.serve(ctx, req)
	if err != nil {
		s.observeRequest(req.Database, nil, err, time.Since(start))
		return nil, err
	}
	// Failure noting lives here, outside the stack, so it fires exactly once
	// per request — cached, coalesced, or freshly generated. Stale responses
	// are excluded: a shed request replaying an old failure is an overload
	// artifact, not a new signal for the miner.
	if resp.Record != nil && !resp.Record.OK && !resp.Stale {
		s.noteFailure(req.Database, resp.Record)
	}
	resp.Duration = time.Since(start)
	s.observeRequest(req.Database, resp, nil, resp.Duration)
	return resp, nil
}

// generateHandler is the innermost layer of the middleware stack: resolve
// the tenant's shared engine and run the pipeline.
func (s *Service) generateHandler() Handler {
	return func(ctx context.Context, req Request) (*Response, error) {
		engine, err := s.Engine(ctx, req.Database)
		if err != nil {
			return nil, err
		}
		rec, err := engine.GenerateContext(ctx, req.Question, req.Evidence)
		if err != nil {
			if errCanceled(err) {
				s.noteCanceled(req.Database)
			}
			return nil, err
		}
		return s.respond(req, rec, false), nil
	}
}

// coalesceMiddleware is the generation-cache layer: serve completed records
// from the versioned LRU and coalesce concurrent identical requests onto
// one pipeline run. A pass-through when the cache is disabled; traced
// requests bypass (their contract is timings of an actual run).
func (s *Service) coalesceMiddleware(next Handler) Handler {
	if s.gencache == nil {
		return next
	}
	return func(ctx context.Context, req Request) (*Response, error) {
		if pipeline.HasTrace(ctx) {
			return next(ctx, req)
		}
		engine, err := s.Engine(ctx, req.Database)
		if err != nil {
			return nil, err
		}
		key := gencache.RequestKey{
			Database: req.Database,
			Version:  engine.KnowledgeSet().Version(),
			Question: req.Question,
			Evidence: req.Evidence,
		}
		rec, cached, err := s.gencache.DoVersioned(ctx, key, func() (*pipeline.Record, error) {
			resp, err := next(ctx, req)
			if err != nil {
				return nil, err
			}
			return resp.Record, nil
		})
		if err != nil {
			if errCanceled(err) {
				s.noteCanceled(req.Database)
			}
			return nil, err
		}
		return s.respond(req, rec, cached), nil
	}
}

// respond builds a Response around a completed record. Failure noting is
// deliberately not done here — Generate notes once per request after the
// stack returns, so cache hits and leaders count identically.
func (s *Service) respond(req Request, rec *Record, cached bool) *Response {
	return &Response{
		Database: req.Database,
		Record:   rec,
		SQL:      rec.FinalSQL,
		OK:       rec.OK,
		Failure:  rec.Failure(),
		Cached:   cached,
	}
}

// admitMiddleware is the overload-defense layer: per-tenant token buckets
// and the bounded deadline-aware queue. A pass-through when WithAdmission
// is absent. On shed it degrades onto a stale cached answer when allowed
// and available, else returns the typed overload error.
func (s *Service) admitMiddleware(next Handler) Handler {
	if s.admission == nil {
		return next
	}
	return func(ctx context.Context, req Request) (*Response, error) {
		release, err := s.admission.Admit(ctx, req.Database)
		if err != nil {
			if errors.Is(err, ErrRateLimited) || errors.Is(err, ErrOverloaded) {
				if resp, ok := s.staleResponse(req); ok {
					return resp, nil
				}
			} else if errCanceled(err) {
				s.noteCanceled(req.Database)
			}
			return nil, err
		}
		defer release()
		return next(ctx, req)
	}
}

// staleResponse looks up the newest cached record for the request's
// question across knowledge versions — the graceful-degradation answer for
// a shed request. ok is false when stale serving is disabled, the cache is
// off, or the question has never completed.
func (s *Service) staleResponse(req Request) (*Response, bool) {
	if s.gencache == nil || (s.admCfg != nil && s.admCfg.DisableStaleServe) {
		return nil, false
	}
	rec, version, ok := s.gencache.PeekStale(gencache.RequestKey{
		Database: req.Database,
		Question: req.Question,
		Evidence: req.Evidence,
	})
	if !ok {
		return nil, false
	}
	resp := s.respond(req, rec, true)
	resp.Stale = true
	resp.StaleVersion = version
	return resp, true
}

// GenerationCacheStats is the generation cache's counter snapshot: Hits
// (served from the LRU), Misses (ran a pipeline generation), Coalesced
// (joined another request's in-flight generation), plus the LRU's current
// Entries and Capacity.
type GenerationCacheStats = gencache.Stats

// GenerationCacheStats reports the generation cache's hit/miss/coalesce
// counters and fill. All fields are zero when the cache is disabled
// (WithGenerationCache absent or <= 0).
func (s *Service) GenerationCacheStats() GenerationCacheStats {
	if s.gencache == nil {
		return GenerationCacheStats{}
	}
	return s.gencache.Stats()
}

// GenerationCacheEnabled reports whether WithGenerationCache configured a
// cache for this service.
func (s *Service) GenerationCacheEnabled() bool { return s.gencache != nil }

// AdmissionStats is a snapshot of the admission controller's counters:
// Admitted/Queued/InFlight gauges, shed counts by cause (RateLimited,
// ShedQueueFull, ShedDeadline, CanceledInQueue), the peak queue depth, and
// a per-tenant breakdown.
type AdmissionStats = admission.Stats

// AdmissionStats reports the admission controller's counters. The zero
// value when admission control is disabled (WithAdmission absent).
func (s *Service) AdmissionStats() AdmissionStats {
	if s.admission == nil {
		return AdmissionStats{}
	}
	return s.admission.Stats()
}

// AdmissionEnabled reports whether WithAdmission configured admission
// control for this service.
func (s *Service) AdmissionEnabled() bool { return s.admission != nil }

// RetrievalStats is the per-index retrieval counter snapshot of one
// database's engine (see pipeline.RetrievalStats / embed.SearchStats).
type RetrievalStats = pipeline.RetrievalStats

// RetrievalStats snapshots the retrieval counters of every built engine,
// keyed by database. Databases whose engines are still building (or failed
// to build) are absent. Safe to call concurrently with serving; an engine
// hot-swapped by an approval starts from fresh counters.
func (s *Service) RetrievalStats() map[string]RetrievalStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]RetrievalStats, len(s.engines))
	for db, p := range s.engines {
		select {
		case <-p.ready:
			if p.engine != nil {
				out[db] = p.engine.RetrievalStats()
			}
		default:
		}
	}
	return out
}

// GenerateBatch serves many requests concurrently over the service's
// bounded worker pool (WithWorkers). The returned slice always has one
// Response per request, input-ordered; per-request failures are reported in
// Response.Err rather than failing the batch. The batch-level error is
// non-nil only when ctx was canceled, in which case undispatched requests
// carry ErrCanceled in their Err.
func (s *Service) GenerateBatch(ctx context.Context, reqs []Request) ([]*Response, error) {
	out := make([]*Response, len(reqs))
	eval.ForEach(ctx, s.workers, len(reqs), func(i int) {
		resp, err := s.Generate(ctx, reqs[i])
		if err != nil {
			resp = &Response{Database: reqs[i].Database, Err: err}
		}
		out[i] = resp
	})
	for i, resp := range out {
		if resp == nil {
			out[i] = &Response{Database: reqs[i].Database, Err: generr.Canceled(ctx.Err())}
		}
	}
	if err := generr.FromContext(ctx); err != nil {
		return out, err
	}
	return out, nil
}

// Solver builds the continuous-improvement workflow around a database's
// shared engine. The golden cases form the regression suite gating merges.
//
// The solver is wired back into the service: approving a pending change
// first persists the merged knowledge events to the database's store (when
// the service is durable — the fsync happens before anything else observes
// the merge) and then atomically hot-swaps the service's served engine, so
// the next Generate call runs with the new knowledge version while
// in-flight calls finish on their old immutable snapshot. Each call
// returns a fresh Solver (own pending queue); share one solver across the
// sessions that should see each other's pending changes.
func (s *Service) Solver(ctx context.Context, db string, golden []*Case) (*Solver, error) {
	engine, err := s.Engine(ctx, db)
	if err != nil {
		return nil, err
	}
	model := simllm.New(simllm.GenEditProfile(), s.suite.Registry, s.modelSeed)
	solver := feedback.NewSolver(engine, feedback.NewRecommender(model), golden)
	solver.SetMergeHook(func(next *Engine) error {
		if st := s.store(db); st != nil {
			if err := st.Commit(next.KnowledgeSet()); err != nil {
				return err
			}
		}
		s.swapEngine(db, next)
		return nil
	})
	return solver, nil
}

// KnowledgeInfo reports the live knowledge state of one database for
// inspection surfaces (the daemon's GET /v1/knowledge/{db}).
type KnowledgeInfo struct {
	Database string
	// Version is the knowledge-set version currently being served.
	Version int
	// Entity counts plus directive count for the served set.
	Examples     int
	Instructions int
	Intents      int
	Directives   int
	// HistoryLen is the total audit-log length; History holds the
	// requested tail of it (defensive copy), oldest first.
	HistoryLen int
	History    []ChangeEvent
	// Persisted reports whether a durable store backs this database;
	// PersistedSeq and SnapshotVersion describe it (0 when in-memory).
	Persisted       bool
	PersistedSeq    int
	SnapshotVersion int
	// StoreFailed carries the store's terminal write-failure state (a WAL
	// rollback that could not restore the durable boundary; all further
	// commits are refused) and CompactionErr the most recent
	// automatic-compaction failure (commits stay durable, but the WAL is
	// not being truncated). Both empty when healthy or in-memory.
	StoreFailed   string
	CompactionErr string
}

// Knowledge returns the served knowledge-set status for one database,
// building (or recovering) the engine on first use. lastN bounds the
// returned history tail — the audit log grows without bound, so copying
// all of it on every inspection call is wasted work: n > 0 returns the n
// most recent events, 0 returns none, and a negative n returns the full
// log.
func (s *Service) Knowledge(ctx context.Context, db string, lastN int) (*KnowledgeInfo, error) {
	engine, err := s.Engine(ctx, db)
	if err != nil {
		return nil, err
	}
	kset := engine.KnowledgeSet()
	st := kset.Stats()
	info := &KnowledgeInfo{
		Database:     db,
		Version:      st.Version,
		Examples:     st.Examples,
		Instructions: st.Instructions,
		Intents:      st.Intents,
		Directives:   st.Directives,
		HistoryLen:   kset.LastSeq(),
	}
	switch {
	case lastN < 0:
		info.History = kset.History()
	case lastN > 0:
		info.History = kset.HistorySince(kset.LastSeq() - lastN)
	}
	if store := s.store(db); store != nil {
		info.Persisted = true
		info.PersistedSeq = store.LastSeq()
		info.SnapshotVersion = store.SnapshotVersion()
		if err := store.Failed(); err != nil {
			info.StoreFailed = err.Error()
		}
		if err := store.CompactionErr(); err != nil {
			info.CompactionErr = err.Error()
		}
	}
	return info, nil
}
