#!/usr/bin/env bash
# CI smoke pass: formatting, static checks, build, tests, race detection on
# the concurrent packages, a live-daemon /metrics scrape checked against the
# required-family manifest, a 1-iteration benchmark sweep so every benchmark
# (and the EX metrics it reports) stays runnable, a race-covered overload
# smoke, and a bounded kstore crash-fuzz run.
set -euo pipefail
cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (concurrent packages: service facade incl. generation-cache stress, daemon incl. feedback + miner endpoints, admission control, generation cache, parallel runner, shared executors, ANN retrieval index, knowledge store, solver, failure miner) =="
go test -race . ./cmd/geneditd ./internal/admission ./internal/eval ./internal/gencache ./internal/metrics ./internal/sqlexec ./internal/pipeline ./internal/embed ./internal/kstore ./internal/feedback ./internal/miner

echo "== ANN exactness gate (top-k order-identical to brute force across the seeded sweep) =="
go test -count=1 -run 'TestANNParitySweep|TestANNDeterministicBuild|TestANNSubLinearScan' ./internal/embed

echo "== metrics scrape smoke (daemon /readyz + /metrics vs required-family manifest) =="
metrics_store=$(mktemp -d)
metrics_addr="127.0.0.1:19187"
go build -o /tmp/geneditd_smoke ./cmd/geneditd
/tmp/geneditd_smoke -addr "$metrics_addr" -store "$metrics_store" -prewarm &
metrics_pid=$!
trap 'kill $metrics_pid 2>/dev/null || true; rm -rf "$metrics_store" /tmp/geneditd_smoke' EXIT
for i in $(seq 1 100); do
    if curl -fsS "http://$metrics_addr/readyz" > /dev/null 2>&1; then break; fi
    if [ "$i" = 100 ]; then echo "daemon never became ready" >&2; exit 1; fi
    sleep 0.1
done
curl -fsS -X POST "http://$metrics_addr/v1/generate" \
    -d '{"database":"sports_holdings","question":"How many teams are in the league?"}' > /dev/null
scrape=$(curl -fsS "http://$metrics_addr/metrics")
while read -r name kind; do
    case "$name" in ''|'#'*) continue;; esac
    if ! echo "$scrape" | grep -q "^# TYPE $name $kind\$"; then
        echo "metrics smoke: required family missing from /metrics: $name ($kind)" >&2
        exit 1
    fi
done < metrics_manifest.txt
if ! echo "$scrape" | grep -qE '^genedit_requests_total\{db="sports_holdings",outcome="(ok|failed_sql)"\} [1-9]'; then
    echo "metrics smoke: request counter did not move after a generate" >&2
    exit 1
fi
kill $metrics_pid && wait $metrics_pid 2>/dev/null || true
trap - EXIT
rm -rf "$metrics_store" /tmp/geneditd_smoke

echo "== miner round smoke (serve recurring failures, mine, audit the merges) =="
go run ./cmd/kbctl -db sports_holdings -demo-mine > /dev/null

echo "== benchmark smoke (1 iteration each) =="
go test -bench=. -benchtime=1x -run '^$' .
go test -bench=. -benchtime=1x -run '^$' ./internal/bench

echo "== parallel serving benchmarks under -race (cache hit path, coalescing, shard contention, morsel scheduler) =="
go test -race -bench 'GenerationCache|GenerationCoalescing|StatementCacheParallel|ParallelEval|BatchMorselParallel' -benchtime=1x -run '^$' .

echo "== closed-loop load smoke (benchrunner -parallel) =="
go run ./cmd/benchrunner -parallel 4 -requests 200 > /dev/null

# The parity half of the overload contract — every admitted response
# bit-identical to an unthrottled reference — is asserted by
# TestAdmissionOverloadParity; the daemon's drain-or-shed shutdown is
# TestDaemonGracefulShutdownUnderLoad. Both rerun here under -race next to
# the load smoke so the overload gate reads as one unit.
echo "== overload smoke under -race (adversarial load vs tiny token budget) =="
go test -race -count=1 -run 'TestAdmissionOverloadParity|TestDaemonGracefulShutdownUnderLoad' . ./cmd/geneditd
overload_out=$(go run -race ./cmd/benchrunner -parallel 8 -requests 300 -adversarial -admitrate 40 -admitburst 10 -maxinflight 4 -maxqueue 16)
if ! echo "$overload_out" | grep -qE '[1-9][0-9]* rate-limited \(429\)'; then
    echo "overload smoke: the token budget was never exhausted (no 429s)" >&2
    echo "$overload_out" >&2
    exit 1
fi

echo "== stress-scale smoke under -race (scaled suite, ANN-partitioned retrieval, concurrent approvals hot-swapping engines mid-load) =="
scale_out=$(go run -race ./cmd/benchrunner -parallel 4 -requests 150 -adversarial -scale 3 -approvers 2 -metricsdump=false)
if ! echo "$scale_out" | grep -qE '[1-9][0-9]* ann-partitioned'; then
    echo "stress-scale smoke: no searches went through the ANN partitions" >&2
    echo "$scale_out" >&2
    exit 1
fi
if ! echo "$scale_out" | grep -qE '[1-9][0-9]* feedback sessions'; then
    echo "stress-scale smoke: the concurrent approver loops never completed a session" >&2
    echo "$scale_out" >&2
    exit 1
fi

echo "== kstore crash-fuzz (1000 injected-fault iterations, event-loss + lineage checks) =="
KSTORE_FUZZ_ITERS=1000 go test -count=1 -run 'TestCrashFuzz|TestFaultSweepExhaustive' ./internal/kstore

# BENCH_6.json (ANN retrieval, PR 10) carries the current wall-clock and
# allocation trajectory; its EX tables are bit-identical to BENCH_0.json —
# the ANN layer is exact (order-identical top-k, enforced by the gate above)
# and the standard suite's indexes sit below the partitioning threshold, so
# default exhibits regenerate through the unchanged scan path. Gating
# against it locks the original accuracy baseline through the retrieval
# rewrite.
echo "== EX parity gate (all tables vs committed BENCH_6.json baseline) =="
go run ./cmd/benchrunner -json /tmp/bench_parity.json -baseline BENCH_6.json > /dev/null

echo "CI pass complete."
