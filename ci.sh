#!/usr/bin/env bash
# CI smoke pass: formatting, static checks, build, tests, race detection on
# the concurrent packages, and a 1-iteration benchmark sweep so every
# benchmark (and the EX metrics it reports) stays runnable.
set -euo pipefail
cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (eval + sqlexec: parallel runner, shared executors) =="
go test -race ./internal/eval ./internal/sqlexec

echo "== benchmark smoke (1 iteration each) =="
go test -bench=. -benchtime=1x -run '^$' .
go test -bench=. -benchtime=1x -run '^$' ./internal/bench

echo "CI pass complete."
