#!/usr/bin/env bash
# CI smoke pass: formatting, static checks, build, tests, race detection on
# the concurrent packages, and a 1-iteration benchmark sweep so every
# benchmark (and the EX metrics it reports) stays runnable.
set -euo pipefail
cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (concurrent packages: service facade incl. generation-cache stress, daemon incl. feedback + miner endpoints, generation cache, parallel runner, shared executors, knowledge store, solver, failure miner) =="
go test -race . ./cmd/geneditd ./internal/eval ./internal/gencache ./internal/sqlexec ./internal/pipeline ./internal/kstore ./internal/feedback ./internal/miner

echo "== miner round smoke (serve recurring failures, mine, audit the merges) =="
go run ./cmd/kbctl -db sports_holdings -demo-mine > /dev/null

echo "== benchmark smoke (1 iteration each) =="
go test -bench=. -benchtime=1x -run '^$' .
go test -bench=. -benchtime=1x -run '^$' ./internal/bench

echo "== parallel serving benchmarks under -race (cache hit path, coalescing, shard contention, morsel scheduler) =="
go test -race -bench 'GenerationCache|GenerationCoalescing|StatementCacheParallel|ParallelEval|BatchMorselParallel' -benchtime=1x -run '^$' .

echo "== closed-loop load smoke (benchrunner -parallel) =="
go run ./cmd/benchrunner -parallel 4 -requests 200 > /dev/null

# BENCH_5.json (failure miner, PR 7) carries the current wall-clock and
# allocation trajectory; its pre-existing EX tables are bit-identical to
# BENCH_0.json (the miner is opt-in, so default serving is unchanged) and it
# adds the miner_convergence exhibit, so gating against it locks both the
# original accuracy baseline and the self-improving loop's trajectory.
echo "== EX parity gate (all tables vs committed BENCH_5.json baseline) =="
go run ./cmd/benchrunner -json /tmp/bench_parity.json -baseline BENCH_5.json > /dev/null

echo "CI pass complete."
