// Feedbackloop walks the interactive flow of the paper's Fig. 3 as a CLI
// transcript: a question is answered wrongly (the knowledge set starts
// without the company glossary), the user gives feedback, the system
// recommends edits, the user stages them and regenerates, submits, the
// edits pass regression testing, a reviewer approves, and the previously
// failing query now returns the right answer — and stays fixed.
//
// The whole interactive session runs under one context: every generation —
// the initial answer, the staged regeneration and the regression replay —
// honors its deadline mid-pipeline, which is what lets a serving deployment
// put an SLA on the feedback workflow.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"genedit/internal/feedback"
	"genedit/internal/knowledge"
	"genedit/internal/pipeline"
	"genedit/internal/simllm"
	"genedit/internal/task"
	"genedit/internal/workload"
)

func main() {
	suite := workload.NewSuite(1)
	model := simllm.New(simllm.GenEditProfile(), suite.Registry, 42)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// Start from a degraded knowledge set: query logs only, no terminology
	// documents — the state of a fresh deployment before SME feedback.
	in := suite.KB["sports_holdings"]
	in.Docs = nil
	kset, err := knowledge.Build(in)
	if err != nil {
		log.Fatal(err)
	}
	engine := pipeline.New(model, kset, suite.Databases["sports_holdings"], pipeline.DefaultConfig())

	var golden []*task.Case
	for _, c := range suite.Cases {
		if c.DB == "sports_holdings" && len(golden) < 4 {
			golden = append(golden, c)
		}
	}
	solver := feedback.NewSolver(engine, feedback.NewRecommender(model), golden)

	var c *task.Case
	for _, cc := range suite.Cases {
		if cc.ID == "sports_holdings-s-our" {
			c = cc
		}
	}

	fmt.Println("== 1. user asks ==")
	fmt.Println("  ", c.Question)
	sess, err := solver.OpenContext(ctx, c.Question, "") // no evidence: fresh deployment
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== 2. generated SQL (wrong: no ownership filter) ==")
	fmt.Println("  ", sess.Record.FinalSQL)

	fmt.Println("\n== 3. user feedback ==")
	fb := "This response queries all sports organisations but I only care about our organisations."
	fmt.Println("  ", fb)
	rec, err := sess.Feedback(fb)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== 4. recommended edits (feedback operators 1-4) ==")
	for _, t := range rec.Targets {
		fmt.Printf("   target [%s %s]: %s\n", t.Kind, t.ID, t.Why)
	}
	for _, step := range rec.Plan {
		fmt.Println("   plan:", step)
	}
	for _, e := range rec.Edits {
		fmt.Println("   edit:", e.Describe())
	}

	fmt.Println("\n== 5. user stages the edits and regenerates ==")
	sess.Stage(rec.Edits...)
	regen, err := sess.RegenerateContext(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  ", regen.FinalSQL)

	fmt.Println("\n== 6. submit: regression testing ==")
	res, err := sess.SubmitContext(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   passed=%v (%s)\n", res.Passed, res.Detail)

	fmt.Println("\n== 7. reviewer approves; edits merge into the knowledge set ==")
	if err := solver.Approve(res.Pending, "reviewer"); err != nil {
		log.Fatal(err)
	}
	st := solver.Engine().KnowledgeSet().Stats()
	fmt.Printf("   knowledge set now: %d instructions (version %d)\n", st.Instructions, st.Version)

	fmt.Println("\n== 8. the same question now succeeds on the live engine ==")
	after, err := solver.Engine().GenerateContext(ctx, c.Question, "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  ", after.FinalSQL)

	fmt.Println("\n== 9. audit history (knowledge set library view) ==")
	hist := solver.Engine().KnowledgeSet().History()
	start := len(hist) - 5
	if start < 0 {
		start = 0
	}
	for _, ev := range hist[start:] {
		fmt.Printf("   #%03d v%03d %-10s %-12s %s\n", ev.Seq, ev.Version, ev.Op, ev.Kind, ev.Summary)
	}
}
