// Quickstart: build the benchmark suite, wrap it in the serving facade, and
// generate SQL for a natural-language question through the full GenEdit
// pipeline. The Service builds each database's engine (the pre-processing
// phase: knowledge-set construction from query logs and documents) lazily on
// first use and shares it across all subsequent — including concurrent —
// requests.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"genedit"
)

func main() {
	// The suite is the synthetic mini-BIRD benchmark: eight enterprise
	// databases with query logs and terminology documents per database.
	suite := genedit.NewBenchmark(1)

	// The service is configured with functional options instead of
	// positional arguments; every knob has a production default.
	svc := genedit.NewService(suite,
		genedit.WithModelSeed(42),
		genedit.WithStatementCacheSize(1024),
	)

	// Requests carry a context: deadlines and cancellation propagate into
	// the pipeline between operators and regeneration attempts.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	question := "which stores recorded net sales above 1200 in 2023-05"
	resp, err := svc.Generate(ctx, genedit.Request{
		Database: "retail_chain",
		Question: question,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("question:    ", question)
	fmt.Println("reformulated:", resp.Record.Reformulated)
	fmt.Println("intents:     ", strings.Join(resp.Record.IntentNames, ", "))
	fmt.Println("sql:         ", resp.SQL)
	if resp.OK && resp.Record.Result != nil {
		fmt.Println("rows:")
		for _, row := range resp.Record.Result.Rows {
			cells := make([]string, len(row))
			for i, v := range row {
				cells[i] = v.String()
			}
			fmt.Println("  ", strings.Join(cells, " | "))
		}
	}

	// Batch generation fans out over the service's bounded worker pool;
	// responses are input-ordered and per-request failures are typed.
	batch, err := svc.GenerateBatch(ctx, []genedit.Request{
		{Database: "retail_chain", Question: "how many stores are in the Midwest region"},
		{Database: "sports_holdings", Question: "top 5 sports organisations by total revenue in Canada for 2023"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbatch:")
	for _, r := range batch {
		if r.Err != nil {
			fmt.Printf("  [%s] error: %v\n", r.Database, r.Err)
			continue
		}
		fmt.Printf("  [%s] %s\n", r.Database, r.SQL)
	}

	// The knowledge set built during pre-processing is inspectable: the
	// library view of §4.2.2.
	engine, err := svc.Engine(ctx, "retail_chain")
	if err != nil {
		log.Fatal(err)
	}
	st := engine.KnowledgeSet().Stats()
	fmt.Printf("\nknowledge set: %d decomposed examples, %d instructions, %d intents\n",
		st.Examples, st.Instructions, st.Intents)
}
