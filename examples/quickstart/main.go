// Quickstart: build the benchmark suite, run the pre-processing phase for
// one company database, and generate SQL for a natural-language question
// through the full GenEdit pipeline.
package main

import (
	"fmt"
	"log"
	"strings"

	"genedit/internal/bench"
	"genedit/internal/pipeline"
	"genedit/internal/workload"
)

func main() {
	// The suite is the synthetic mini-BIRD benchmark: eight enterprise
	// databases with query logs and terminology documents per database.
	suite := workload.NewSuite(1)

	// NewGenEditSystem runs pre-processing (knowledge-set construction from
	// logs + documents) for every database and wires the pipeline.
	system, err := bench.NewGenEditSystem("GenEdit", suite, pipeline.DefaultConfig(), 42)
	if err != nil {
		log.Fatal(err)
	}
	engine := system.Engine("retail_chain")

	question := "which stores recorded net sales above 1200 in 2023-05"
	rec, err := engine.Generate(question, "")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("question:    ", question)
	fmt.Println("reformulated:", rec.Reformulated)
	fmt.Println("intents:     ", strings.Join(rec.IntentNames, ", "))
	fmt.Println("sql:         ", rec.FinalSQL)
	if rec.OK && rec.Result != nil {
		fmt.Println("rows:")
		for _, row := range rec.Result.Rows {
			cells := make([]string, len(row))
			for i, v := range row {
				cells[i] = v.String()
			}
			fmt.Println("  ", strings.Join(cells, " | "))
		}
	}

	// The knowledge set built during pre-processing is inspectable: the
	// library view of §4.2.2.
	st := engine.KnowledgeSet().Stats()
	fmt.Printf("\nknowledge set: %d decomposed examples, %d instructions, %d intents\n",
		st.Examples, st.Instructions, st.Intents)
}
