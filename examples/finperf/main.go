// Finperf reproduces the paper's running example Q_fin-perf: the sports
// holding company's quarter-over-quarter financial performance question.
// It prints the retrieved knowledge and CoT plan in the structure of the
// paper's Fig. 2, generates the SQL, executes it, and also executes the
// Appendix A query verbatim against the same database.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"genedit"
	"genedit/internal/sqlexec"
)

// appendixQuery is the Appendix A output of the paper (with its unbalanced
// parenthesis repaired), rebased onto the synthetic sports database.
const appendixQuery = `
WITH FINANCIALS AS (
  SELECT ORG_NAME,
    SUM(CASE WHEN TO_CHAR(FIN_MONTH, 'YYYY"Q"Q') = '2023Q1' THEN REVENUE ELSE 0 END) AS REVENUE_2023Q1,
    SUM(CASE WHEN TO_CHAR(FIN_MONTH, 'YYYY"Q"Q') = '2023Q2' THEN REVENUE ELSE 0 END) AS REVENUE_2023Q2
  FROM SPORTS_FINANCIALS
  WHERE TO_CHAR(FIN_MONTH, 'YYYY"Q"Q') IN ('2023Q1', '2023Q2')
    AND COUNTRY = 'Canada' AND OWNERSHIP_FLAG_COLUMN = 'COC'
  GROUP BY ORG_NAME
),
VIEWERSHIP AS (
  SELECT ORG_NAME,
    SUM(CASE WHEN TO_CHAR(VIEW_MONTH, 'YYYY"Q"Q') = '2023Q1' THEN VIEWS ELSE 0 END) AS VIEWS_2023Q1,
    SUM(CASE WHEN TO_CHAR(VIEW_MONTH, 'YYYY"Q"Q') = '2023Q2' THEN VIEWS ELSE 0 END) AS VIEWS_2023Q2
  FROM SPORTS_VIEWERSHIP
  WHERE TO_CHAR(VIEW_MONTH, 'YYYY"Q"Q') IN ('2023Q1', '2023Q2')
    AND COUNTRY = 'Canada' AND OWNERSHIP_FLAG_COLUMN = 'COC'
  GROUP BY ORG_NAME
),
CHANGE_IN_REVENUE AS (
  SELECT f.ORG_NAME,
    CAST(f.REVENUE_2023Q2 AS FLOAT) / NULLIF(v.VIEWS_2023Q2, 0) AS RPV,
    CAST(f.REVENUE_2023Q1 AS FLOAT) / NULLIF(v.VIEWS_2023Q1, 0) AS PRIOR_QTR_RPV,
    -1 * ((CAST(f.REVENUE_2023Q2 AS FLOAT) / NULLIF(v.VIEWS_2023Q2, 0)) -
          (CAST(f.REVENUE_2023Q1 AS FLOAT) / NULLIF(v.VIEWS_2023Q1, 0))) AS RPV_CHANGE,
    ROW_NUMBER() OVER (ORDER BY (-1 * ((CAST(f.REVENUE_2023Q2 AS FLOAT) / NULLIF(v.VIEWS_2023Q2, 0)) -
          (CAST(f.REVENUE_2023Q1 AS FLOAT) / NULLIF(v.VIEWS_2023Q1, 0)))) DESC) AS SPORT_RANK,
    ROW_NUMBER() OVER (ORDER BY (-1 * ((CAST(f.REVENUE_2023Q2 AS FLOAT) / NULLIF(v.VIEWS_2023Q2, 0)) -
          (CAST(f.REVENUE_2023Q1 AS FLOAT) / NULLIF(v.VIEWS_2023Q1, 0)))) ASC) AS WORST_SPORT_RANK
  FROM FINANCIALS f JOIN VIEWERSHIP v ON f.ORG_NAME = v.ORG_NAME
)
SELECT SPORT_RANK, ORG_NAME, RPV, PRIOR_QTR_RPV, RPV_CHANGE
FROM CHANGE_IN_REVENUE
WHERE SPORT_RANK <= 5 OR WORST_SPORT_RANK <= 5
ORDER BY SPORT_RANK`

func main() {
	suite := genedit.NewBenchmark(1)
	svc := genedit.NewService(suite, genedit.WithModelSeed(42))
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// The running example: QoQFP is company jargon the knowledge set
	// defines; the question cannot be answered without it.
	var question, evidence string
	for _, c := range suite.Cases {
		if c.ID == "sports_holdings-c-qoq" {
			question, evidence = c.Question, c.Evidence
		}
	}
	fmt.Println("=== Q_fin-perf:", question, "===")

	resp, err := svc.Generate(ctx, genedit.Request{
		Database: "sports_holdings",
		Question: question,
		Evidence: evidence,
	})
	if err != nil {
		log.Fatal(err)
	}
	rec := resp.Record

	fmt.Println("\n--- generation prompt (Fig. 2 structure) ---")
	fmt.Println(rec.Prompt())

	fmt.Println("--- generated SQL ---")
	fmt.Println(resp.SQL)
	if resp.OK && rec.Result != nil {
		printRows(rec.Result, 8)
	}

	fmt.Println("\n=== Appendix A query executed verbatim ===")
	exec := sqlexec.New(suite.Databases["sports_holdings"])
	res, err := exec.Query(appendixQuery)
	if err != nil {
		log.Fatal(err)
	}
	printRows(res, 12)
}

func printRows(res *sqlexec.Result, max int) {
	fmt.Println(strings.Join(res.Columns, " | "))
	for i, row := range res.Rows {
		if i >= max {
			fmt.Printf("... (%d more rows)\n", len(res.Rows)-i)
			break
		}
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = v.String()
		}
		fmt.Println(strings.Join(cells, " | "))
	}
}
