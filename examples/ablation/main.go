// Ablation runs the paper's Table 2 ablations plus the extra design-choice
// ablations DESIGN.md calls out (context expansion, planning, self-
// correction, retry budget), printing one combined report. The runs are
// driven through the context-aware exhibit API, so a deadline bounds the
// whole sweep and aborts mid-case when exceeded.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"genedit/internal/bench"
	"genedit/internal/eval"
	"genedit/internal/workload"
)

func main() {
	suite := workload.NewSuite(1)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	reports, err := bench.RunAblationsContext(ctx, suite, 42, bench.Table2Ablations())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(eval.FormatTable("Table 2 ablations", reports))

	extra, err := bench.RunAblationsContext(ctx, suite, 42, bench.ExtraAblations())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(eval.FormatTable("Design-choice ablations", extra))

	base := reports[0]
	fmt.Println("per-row deltas vs full pipeline (All):")
	for _, rep := range reports[1:] {
		fmt.Printf("  %-24s %+6.2f\n", rep.System, rep.EX("")-base.EX(""))
	}
}
