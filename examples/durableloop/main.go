// Durableloop demonstrates the durable continuous-improvement loop: a
// store-backed service ingests SME feedback, the approved edits are fsynced
// to the knowledge store (WAL + snapshots) before the serving engine
// hot-swaps, the process "dies", and a fresh service over the same store
// recovers the exact knowledge version, audit history and behaviour — the
// previously failing question stays fixed across the restart.
//
// This is the property §4 of the paper needs in production: knowledge-set
// edits compound over time, so losing them on restart would reset the
// system to its seed quality.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"genedit"
	"genedit/internal/eval"
	"genedit/internal/feedback"
	"genedit/internal/task"
)

const db = "sports_holdings"

func main() {
	dir, err := os.MkdirTemp("", "genedit-store-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ctx := context.Background()

	suite := genedit.NewBenchmark(1)
	runner := eval.NewRunner(suite.Databases)
	sme := feedback.NewSimulatedSME(7)
	var cases []*task.Case
	for _, c := range suite.Cases {
		if c.DB == db {
			cases = append(cases, c)
		}
	}

	fmt.Println("== 1. durable service: first open seed-builds and persists ==")
	svc := genedit.NewService(suite, genedit.WithModelSeed(42), genedit.WithStorePath(dir))
	info, err := svc.Knowledge(ctx, db, -1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   %s: version %d, %d examples, %d instructions (persisted seq %d)\n",
		db, info.Version, info.Examples, info.Instructions, info.PersistedSeq)

	fmt.Println("\n== 2. an SME fixes a failing question through the feedback solver ==")
	solver, err := svc.Solver(ctx, db, cases[:4])
	if err != nil {
		log.Fatal(err)
	}
	var fixed *task.Case
	for _, c := range cases {
		resp, err := svc.Generate(ctx, genedit.Request{Database: db, Question: c.Question, Evidence: c.Evidence})
		if err != nil {
			log.Fatal(err)
		}
		if ok, _ := runner.Evaluate(c, resp.SQL); ok {
			continue
		}
		sess, err := solver.OpenContext(ctx, c.Question, c.Evidence)
		if err != nil {
			log.Fatal(err)
		}
		rec, err := sess.Feedback(sme.FeedbackFor(c, sess.Record))
		if err != nil {
			log.Fatal(err)
		}
		sess.Stage(rec.Edits...)
		if _, err := sess.RegenerateContext(ctx); err != nil {
			log.Fatal(err)
		}
		res, err := sess.SubmitContext(ctx)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Passed {
			continue
		}
		if err := solver.Approve(res.Pending, "reviewer"); err != nil {
			log.Fatal(err)
		}
		fixed = c
		fmt.Printf("   question: %s\n", c.Question)
		for _, e := range res.Pending.Edits {
			fmt.Println("   merged:", e.Describe())
		}
		break
	}
	if fixed == nil {
		log.Fatal("no feedback session reached approval")
	}

	before, err := svc.Knowledge(ctx, db, -1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   knowledge now: version %d, history %d events, fsynced through seq %d\n",
		before.Version, len(before.History), before.PersistedSeq)

	fmt.Println("\n== 3. kill the process (close the service) ==")
	if err := svc.Close(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== 4. restart: a fresh service recovers the store, skipping the seed build ==")
	svc2 := genedit.NewService(genedit.NewBenchmark(1), genedit.WithModelSeed(42), genedit.WithStorePath(dir))
	defer svc2.Close()
	after, err := svc2.Knowledge(ctx, db, -1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   recovered: version %d, history %d events (want %d / %d)\n",
		after.Version, len(after.History), before.Version, len(before.History))
	if after.Version != before.Version || len(after.History) != len(before.History) {
		log.Fatal("recovery mismatch: the store lost events")
	}

	fmt.Println("\n== 5. the SME's fix survived the restart ==")
	resp, err := svc2.Generate(ctx, genedit.Request{Database: db, Question: fixed.Question, Evidence: fixed.Evidence})
	if err != nil {
		log.Fatal(err)
	}
	ok, err := runner.Evaluate(fixed, resp.SQL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   %s\n   correct after restart: %v\n", resp.SQL, ok)

	fmt.Println("\n== 6. audit history tail (survives restarts, provenance intact) ==")
	hist := after.History
	if len(hist) > 5 {
		hist = hist[len(hist)-5:]
	}
	for _, ev := range hist {
		fmt.Printf("   #%03d v%03d %-10s %-12s %s\n", ev.Seq, ev.Version, ev.Op, ev.Kind, ev.Summary)
	}
}
