// Package genedit is the public facade of the GenEdit reproduction — a
// from-scratch Go implementation of "GenEdit: Compounding Operators and
// Continuous Improvement to Tackle Text-to-SQL in the Enterprise"
// (CIDR 2025).
//
// The facade wires the three things a downstream user needs:
//
//   - a Benchmark (the synthetic mini-BIRD suite with eight enterprise
//     databases, query logs and terminology documents);
//   - a Service (the long-lived, multi-tenant serving layer: one lazily
//     built shared Engine per database, concurrent and batch generation,
//     context cancellation, per-request tracing);
//   - a Solver per database (the continuous-improvement workflow:
//     feedback → recommended edits → staging → regression testing →
//     approval → merge, with merges persisted and hot-swapped into
//     serving when the service is durable).
//
// Quick use:
//
//	suite := genedit.NewBenchmark(1)
//	svc := genedit.NewService(suite, genedit.WithModelSeed(42))
//	resp, err := svc.Generate(ctx, genedit.Request{
//		Database: "sports_holdings",
//		Question: "top 5 sports organisations by total revenue in Canada for 2023",
//	})
//	if err != nil { ... } // ErrUnknownDatabase, ErrCanceled, operator errors
//	fmt.Println(resp.SQL)
//
// The Service is safe for concurrent use and honors context deadlines
// mid-pipeline; GenerateBatch fans many requests out over a bounded worker
// pool. Construction is configured with functional options (WithConfig,
// WithModelSeed, WithWorkers, WithStatementCacheSize, WithTrace,
// WithStorePath). The positional constructors NewEngine and NewSolver
// remain as deprecated wrappers for one release.
//
// WithStorePath makes the knowledge sets durable: each database is backed
// by a crash-safe WAL + snapshot store (internal/kstore), approved SME
// edits are fsynced before the serving engine hot-swaps, and a restarted
// service recovers the exact knowledge version and audit history. See
// DESIGN.md, "Knowledge persistence & online feedback".
//
// See DESIGN.md for the system inventory (including the "Service layer"
// section) and EXPERIMENTS.md for the paper-vs-measured record of every
// table the harness regenerates.
package genedit

import (
	"fmt"

	"genedit/internal/eval"
	"genedit/internal/feedback"
	"genedit/internal/knowledge"
	"genedit/internal/pipeline"
	"genedit/internal/simllm"
	"genedit/internal/sqlexec"
	"genedit/internal/task"
	"genedit/internal/workload"
)

// Re-exported core types. The aliases keep the public API surface in one
// place while the implementation lives in internal packages.
type (
	// Config controls the pipeline, including the Table 2 ablation
	// switches.
	Config = pipeline.Config
	// Engine is the generation pipeline bound to one database and
	// knowledge set.
	Engine = pipeline.Engine
	// Record is a full generation trace (context, plan, attempts, result).
	Record = pipeline.Record
	// Result is a materialized query result (Record.Result, Response data).
	Result = sqlexec.Result
	// Benchmark is the synthetic mini-BIRD suite.
	Benchmark = workload.Suite
	// Case is one benchmark question with gold SQL and requirement tags.
	Case = task.Case
	// KnowledgeSet is the company-specific materialized view of examples,
	// instructions and intents.
	KnowledgeSet = knowledge.Set
	// Edit is one change to a knowledge set.
	Edit = knowledge.Edit
	// ChangeEvent is one knowledge-set audit record: full-fidelity (it
	// carries the entity payload), so a log of events is replayable — the
	// record format of the durable store's WAL (WithStorePath).
	ChangeEvent = knowledge.ChangeEvent
	// Solver is the interactive feedback workflow.
	Solver = feedback.Solver
	// Report aggregates evaluation outcomes for one system.
	Report = eval.Report
)

// DefaultConfig returns the production pipeline configuration (k=3
// regeneration attempts, context expansion on, all operators enabled).
func DefaultConfig() Config { return pipeline.DefaultConfig() }

// NewBenchmark generates the synthetic benchmark with the given seed:
// 93 simple / 28 moderate / 11 challenging cases over eight databases.
func NewBenchmark(seed uint64) *Benchmark { return workload.NewSuite(seed) }

// NewEngine runs the pre-processing phase for one benchmark database
// (knowledge-set construction from query logs and documents) and returns
// the generation pipeline over it. modelSeed seeds the simulated model's
// deterministic draws.
//
// Deprecated: build a Service instead — NewService(b,
// WithModelSeed(modelSeed), WithConfig(cfg)) caches one shared engine per
// database (Service.Engine) and coalesces duplicate concurrent builds,
// where every NewEngine call redoes the knowledge-set and index build.
func NewEngine(b *Benchmark, db string, cfg Config, modelSeed uint64) (*Engine, error) {
	database, ok := b.Databases[db]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDatabase, db)
	}
	kset, err := b.BuildKnowledge(db)
	if err != nil {
		return nil, err
	}
	model := simllm.New(simllm.GenEditProfile(), b.Registry, modelSeed)
	return pipeline.New(model, kset, database, cfg), nil
}

// NewSolver builds the continuous-improvement workflow around an engine.
// The golden cases form the regression suite gating merges.
//
// Deprecated: use Service.Solver, which reuses the service's shared engine
// instead of requiring the caller to have built one positionally.
func NewSolver(b *Benchmark, engine *Engine, modelSeed uint64, golden []*Case) *Solver {
	model := simllm.New(simllm.GenEditProfile(), b.Registry, modelSeed)
	return feedback.NewSolver(engine, feedback.NewRecommender(model), golden)
}
