package genedit_test

import (
	"context"
	"reflect"
	"testing"

	"genedit"
	"genedit/internal/eval"
	"genedit/internal/feedback"
	"genedit/internal/task"
)

const storeDB = "sports_holdings"

func dbCases(suite *genedit.Benchmark) []*task.Case {
	var out []*task.Case
	for _, c := range suite.Cases {
		if c.DB == storeDB {
			out = append(out, c)
		}
	}
	return out
}

func goldenOf(suite *genedit.Benchmark) []*genedit.Case {
	cs := dbCases(suite)
	if len(cs) > 4 {
		cs = cs[:4]
	}
	return cs
}

// runFeedbackRound drives one continuous-improvement round (§4.2.3) for
// storeDB through the Service API: every failed case opens an SME session,
// stages the recommended edits, regenerates, submits, and approves on a
// regression pass — up to maxSessions sessions. It returns the final
// per-case correctness of the served engine.
func runFeedbackRound(t *testing.T, svc *genedit.Service, suite *genedit.Benchmark, maxSessions int) map[string]bool {
	t.Helper()
	ctx := context.Background()
	runner := eval.NewRunner(suite.Databases)
	sme := feedback.NewSimulatedSME(7)

	solver, err := svc.Solver(ctx, storeDB, goldenOf(suite))
	if err != nil {
		t.Fatal(err)
	}
	sessions := 0
	for _, c := range dbCases(suite) {
		if sessions >= maxSessions {
			break
		}
		resp, err := svc.Generate(ctx, genedit.Request{Database: storeDB, Question: c.Question, Evidence: c.Evidence})
		if err != nil {
			t.Fatal(err)
		}
		if ok, err := runner.Evaluate(c, resp.SQL); err != nil || ok {
			continue
		}
		sess, err := solver.OpenContext(ctx, c.Question, c.Evidence)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := sess.Feedback(sme.FeedbackFor(c, sess.Record))
		if err != nil {
			t.Fatal(err)
		}
		staged, _ := sme.ReviewEdits(c, rec.Edits)
		sess.Stage(staged...)
		regen, err := sess.RegenerateContext(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if fixed, err := runner.Evaluate(c, regen.FinalSQL); err != nil || !fixed {
			continue
		}
		res, err := sess.SubmitContext(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if res.Passed {
			if err := solver.Approve(res.Pending, "reviewer"); err != nil {
				t.Fatal(err)
			}
		}
		sessions++
	}
	if sessions == 0 {
		t.Fatal("expected at least one feedback session (no failed cases found?)")
	}

	correct := make(map[string]bool)
	for _, c := range dbCases(suite) {
		resp, err := svc.Generate(ctx, genedit.Request{Database: storeDB, Question: c.Question, Evidence: c.Evidence})
		if err != nil {
			t.Fatal(err)
		}
		ok, err := runner.Evaluate(c, resp.SQL)
		if err != nil {
			t.Fatal(err)
		}
		correct[c.ID] = ok
	}
	return correct
}

// TestDurableServiceMatchesInMemory is the §4.2.3-through-the-store parity
// check: the same continuous-improvement round driven through an in-memory
// service and a store-backed one produces bit-identical EX outcomes and
// knowledge state; killing the durable service and reopening its store
// recovers the exact version, history and generation behaviour.
func TestDurableServiceMatchesInMemory(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	svcMem := genedit.NewService(genedit.NewBenchmark(1), genedit.WithModelSeed(42))
	svcDur := genedit.NewService(genedit.NewBenchmark(1), genedit.WithModelSeed(42), genedit.WithStorePath(dir))

	suite := genedit.NewBenchmark(1)
	exMem := runFeedbackRound(t, svcMem, suite, 3)
	exDur := runFeedbackRound(t, svcDur, suite, 3)
	if !reflect.DeepEqual(exMem, exDur) {
		t.Errorf("EX outcomes diverge between in-memory and durable services:\n mem %v\n dur %v", exMem, exDur)
	}

	infoMem, err := svcMem.Knowledge(ctx, storeDB, -1)
	if err != nil {
		t.Fatal(err)
	}
	infoDur, err := svcDur.Knowledge(ctx, storeDB, -1)
	if err != nil {
		t.Fatal(err)
	}
	if infoMem.Version != infoDur.Version {
		t.Errorf("knowledge version: mem %d, dur %d", infoMem.Version, infoDur.Version)
	}
	if !reflect.DeepEqual(infoMem.History, infoDur.History) {
		t.Error("audit history diverges between in-memory and durable services")
	}
	if !infoDur.Persisted || infoDur.PersistedSeq != infoDur.Version {
		t.Errorf("durable service store state = %+v, want persisted through seq %d", infoDur, infoDur.Version)
	}

	// Kill and restart: a fresh service over the same store must recover
	// the exact knowledge version and history, skip the seed build, and
	// generate identical SQL for every case.
	if err := svcDur.Close(); err != nil {
		t.Fatal(err)
	}
	svcRec := genedit.NewService(genedit.NewBenchmark(1), genedit.WithModelSeed(42), genedit.WithStorePath(dir))
	defer svcRec.Close()
	infoRec, err := svcRec.Knowledge(ctx, storeDB, -1)
	if err != nil {
		t.Fatal(err)
	}
	if infoRec.Version != infoDur.Version {
		t.Errorf("recovered version %d, want %d", infoRec.Version, infoDur.Version)
	}
	if !reflect.DeepEqual(infoRec.History, infoDur.History) {
		t.Error("recovered history diverges event-for-event")
	}
	for _, c := range dbCases(suite) {
		want, err := svcMem.Generate(ctx, genedit.Request{Database: storeDB, Question: c.Question, Evidence: c.Evidence})
		if err != nil {
			t.Fatal(err)
		}
		got, err := svcRec.Generate(ctx, genedit.Request{Database: storeDB, Question: c.Question, Evidence: c.Evidence})
		if err != nil {
			t.Fatal(err)
		}
		if got.SQL != want.SQL || got.OK != want.OK {
			t.Errorf("case %s: recovered service SQL %q (ok=%v), want %q (ok=%v)", c.ID, got.SQL, got.OK, want.SQL, want.OK)
		}
	}
}

// TestApproveHotSwapsServedEngine: after an approval the service serves a
// new engine while the old engine remains fully usable for in-flight work.
func TestApproveHotSwapsServedEngine(t *testing.T) {
	ctx := context.Background()
	suite := genedit.NewBenchmark(1)
	svc := genedit.NewService(suite, genedit.WithModelSeed(42))

	before, err := svc.Engine(ctx, storeDB)
	if err != nil {
		t.Fatal(err)
	}
	versionBefore := before.KnowledgeSet().Version()

	solver, err := svc.Solver(ctx, storeDB, goldenOf(suite))
	if err != nil {
		t.Fatal(err)
	}
	runner := eval.NewRunner(suite.Databases)
	sme := feedback.NewSimulatedSME(7)
	approved := false
	for _, c := range dbCases(suite) {
		rec0, err := before.GenerateContext(ctx, c.Question, c.Evidence)
		if err != nil {
			t.Fatal(err)
		}
		if ok, _ := runner.Evaluate(c, rec0.FinalSQL); ok {
			continue
		}
		sess, err := solver.OpenContext(ctx, c.Question, c.Evidence)
		if err != nil {
			t.Fatal(err)
		}
		fb, err := sess.Feedback(sme.FeedbackFor(c, sess.Record))
		if err != nil {
			t.Fatal(err)
		}
		staged, _ := sme.ReviewEdits(c, fb.Edits)
		sess.Stage(staged...)
		if _, err := sess.RegenerateContext(ctx); err != nil {
			t.Fatal(err)
		}
		res, err := sess.SubmitContext(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if res.Passed {
			if err := solver.Approve(res.Pending, "reviewer"); err != nil {
				t.Fatal(err)
			}
			approved = true
			break
		}
	}
	if !approved {
		t.Fatal("no change was approved")
	}

	after, err := svc.Engine(ctx, storeDB)
	if err != nil {
		t.Fatal(err)
	}
	if after == before {
		t.Error("service still serves the pre-approval engine")
	}
	if after.KnowledgeSet().Version() <= versionBefore {
		t.Error("served knowledge version did not advance")
	}
	// The old engine's snapshot is untouched and still generates.
	if before.KnowledgeSet().Version() != versionBefore {
		t.Error("old engine's knowledge set was mutated by the merge")
	}
	if _, err := before.GenerateContext(ctx, "how many sports organisations are there", ""); err != nil {
		t.Errorf("old engine broken after swap: %v", err)
	}
}
